package report

import (
	"context"
	"fmt"
	"time"

	"adaptbf/internal/experiments"
	"adaptbf/internal/harness"
	"adaptbf/internal/metrics"
	"adaptbf/internal/sim"
	"adaptbf/internal/stats"
)

// GIFTScaleStudyName is the Study.Name of the built-in scale study, and
// the value the CLI's -study flag accepts.
const GIFTScaleStudyName = "gift-scale"

// A Study is the study-specific section of a Document.
type Study struct {
	Name        string     `json:"name"`
	Description string     `json:"description"`
	Rows        []StudyRow `json:"rows"`
	Gaps        []GapRow   `json:"gaps"`
}

// A StudyRow is one policy's seed-axis statistics at one OSS count. CI
// fields are Student-t half-widths at the document's CILevel (0 when
// fewer than two seeds ran).
type StudyRow struct {
	OSSes  int    `json:"osses"`
	Policy string `json:"policy"`
	Seeds  int64  `json:"seeds"`

	MeanMiBps float64 `json:"mean_mibps"`
	CIMiBps   float64 `json:"ci_mibps"`

	// Fairness is Jain's index over per-job bandwidth normalized by each
	// job's compute-node priority — 1.0 means every job got exactly its
	// priority-proportional share.
	FairnessMean float64 `json:"fairness_mean"`
	FairnessCI   float64 `json:"fairness_ci"`

	UtilizationMean float64 `json:"utilization_mean"`
	UtilizationCI   float64 `json:"utilization_ci"`

	// CoordUSPerEpoch is the serial work at the policy's coordination
	// point each epoch, in microseconds: for GIFT the centralized
	// controller's whole walk over every storage target (it is one
	// process, so the walk is serial by design); for AdapTBF the mean
	// per-target controller tick (each target's controller runs
	// independently, so per-target cost IS the critical path); 0 for
	// NoBW. Wall-clock derived: reporting-only, never fingerprinted.
	CoordUSPerEpochMean float64 `json:"coord_us_per_epoch_mean"`
	CoordUSPerEpochCI   float64 `json:"coord_us_per_epoch_ci"`

	// RuleOpsPerEpoch is the mean number of TBF rule operations the
	// policy issued per epoch — the deterministic coordination-traffic
	// measure (every op is a control-plane mutation on a storage target).
	RuleOpsPerEpoch float64 `json:"rule_ops_per_epoch"`

	// CtrlMsgsPerEpoch is the deterministic controller-message count at
	// the policy's coordination point per epoch (sim.Result.CtrlMsgs:
	// two messages per controller cycle per target plus one per rule
	// op), split the same way as CoordUSPerEpoch — GIFT's whole serial
	// walk vs AdapTBF's per-target mean. Being a pure function of the
	// simulation, it is the fingerprint-stable twin of the wall-clock
	// coordination columns.
	CtrlMsgsPerEpochMean float64 `json:"ctrl_msgs_per_epoch_mean"`
	CtrlMsgsPerEpochCI   float64 `json:"ctrl_msgs_per_epoch_ci"`

	// CouponBankEntries is the mean end-of-run size of GIFT's global
	// coupon bank (jobs with non-zero balance), and CouponsOutstanding
	// the mean total balance (tokens) still owed — centralized state
	// with no AdapTBF equivalent; 0 for other policies.
	CouponBankEntries  float64 `json:"coupon_bank_entries,omitempty"`
	CouponsOutstanding float64 `json:"coupons_outstanding,omitempty"`
}

// A GapRow quantifies the GIFT-vs-AdapTBF gap at one OSS count, from
// seed-paired differences (each seed contributes one difference, so the
// CIs are over the paired deltas, not the pooled populations). Seeds is
// the number of seed pairs with both policies present; a per-metric
// statistic can cover fewer pairs when its denominator is degenerate
// (zero baseline bandwidth or sub-microsecond coordination time), in
// which case its *N field says how many pairs actually fed it — 0 means
// the statistic is unavailable, not zero.
type GapRow struct {
	OSSes int   `json:"osses"`
	Seeds int64 `json:"seeds"`

	// ThroughputPct is GIFT's overall bandwidth relative to AdapTBF's,
	// in percent (negative = GIFT slower).
	ThroughputPctMean float64 `json:"throughput_pct_mean"`
	ThroughputPctCI   float64 `json:"throughput_pct_ci"`
	ThroughputPctN    int64   `json:"throughput_pct_n"`

	// FairnessDelta is GIFT's Jain index minus AdapTBF's (negative =
	// GIFT less priority-fair).
	FairnessDeltaMean float64 `json:"fairness_delta_mean"`
	FairnessDeltaCI   float64 `json:"fairness_delta_ci"`

	// CoordRatio is GIFT's per-epoch serial coordination cost over
	// AdapTBF's — the centralization overhead factor the paper argues
	// grows with scale. CoordRatioN == 0 means no seed pair produced a
	// measurable ratio (e.g. coordination time below clock resolution).
	CoordRatioMean float64 `json:"coord_ratio_mean"`
	CoordRatioCI   float64 `json:"coord_ratio_ci"`
	CoordRatioN    int64   `json:"coord_ratio_n"`

	// MsgRatio is the deterministic counterpart of CoordRatio: GIFT's
	// per-epoch serial controller messages over AdapTBF's per-target
	// mean. It is a pure function of the matrix cells, so — unlike the
	// wall-clock ratio — identical runs report identical gap values.
	MsgRatioMean float64 `json:"msg_ratio_mean"`
	MsgRatioCI   float64 `json:"msg_ratio_ci"`
	MsgRatioN    int64   `json:"msg_ratio_n"`
}

// ScaleStudyOptions parameterizes RunGIFTScaleStudy. The zero value runs
// the acceptance configuration: striped-seq × {NoBW, AdapTBF, GIFT} ×
// OSS {1,2,4,8} × seeds {1..5} at scale 64.
type ScaleStudyOptions struct {
	Scenario harness.Scenario // default harness.StripedSequentialScenario()
	OSSes    []int            // default {1, 2, 4, 8}
	Seeds    []int64          // default {1, 2, 3, 4, 5}
	Scale    int64            // default 64
	Duration time.Duration    // default 30 simulated minutes
	Workers  int              // default NumCPU
	CILevel  float64          // default harness.DefaultCILevel

	// IncludeBuckets forwards to Options.IncludeBuckets for the JSON
	// document.
	IncludeBuckets bool
	// OnCell forwards to harness.Options.OnCell for progress reporting.
	OnCell func(harness.CellResult)
}

func (o ScaleStudyOptions) normalize() ScaleStudyOptions {
	if o.Scenario.Jobs == nil {
		o.Scenario = harness.StripedSequentialScenario()
	}
	if len(o.OSSes) == 0 {
		o.OSSes = []int{1, 2, 4, 8}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if o.Scale < 1 {
		o.Scale = 64
	}
	if o.Duration <= 0 {
		o.Duration = 30 * time.Minute
	}
	if o.CILevel <= 0 || o.CILevel >= 1 {
		o.CILevel = harness.DefaultCILevel
	}
	return o
}

// A ScaleStudy is a finished GIFT-vs-AdapTBF scale study: the raw merged
// matrix, the JSON document (with the Study section filled), and a
// renderable/CSV-exportable report whose tables include the
// centralization-overhead comparison.
type ScaleStudy struct {
	Matrix   *harness.MatrixResult
	Document *Document
	Report   *experiments.Report
}

// RunGIFTScaleStudy reproduces the paper's decentralization claim at
// scale: it sweeps GIFT (one centralized controller spanning every
// storage target), AdapTBF (one independent controller per target), and
// the NoBW floor across OSS counts with seed replication, and reports
// per-OSS-count coordination cost, priority fairness, and utilization
// with Student-t confidence intervals over the seed axis — the
// quantified version of §IV-C's critique that GIFT's centralization pays
// a per-server price AdapTBF's token borrowing avoids.
func RunGIFTScaleStudy(opt ScaleStudyOptions) (*ScaleStudy, error) {
	opt = opt.normalize()
	m := harness.Matrix{
		Scenarios: []harness.Scenario{opt.Scenario},
		Policies:  []sim.Policy{sim.NoBW, sim.AdapTBF, sim.GIFT},
		Scales:    []int64{opt.Scale},
		OSSes:     opt.OSSes,
		Seeds:     opt.Seeds,
		Duration:  opt.Duration,
	}
	res, err := harness.Run(context.Background(), m,
		harness.WithWorkers(opt.Workers), harness.WithProgress(opt.OnCell))
	if err != nil {
		return nil, err
	}
	// One Summaries pass feeds the document, the study fold, and the
	// rendered report alike.
	sums := res.Summaries()
	doc := fromMatrix(res, sums, Options{
		CILevel:        opt.CILevel,
		Title:          "GIFT vs AdapTBF centralization-overhead scale study",
		IncludeBuckets: opt.IncludeBuckets,
	})
	doc.Kind = GIFTScaleStudyName
	study, tables := buildScaleStudy(res, sums, opt)
	doc.Study = study

	rep := res.ReportCIWith(sums, opt.CILevel)
	rep.ID = GIFTScaleStudyName
	rep.Title = doc.Title
	rep.Tables = append(rep.Tables, tables...)
	return &ScaleStudy{Matrix: res, Document: doc, Report: rep}, nil
}

// cellMetrics are the per-cell scalars the study accumulates per
// (OSS count, policy) group.
type cellMetrics struct {
	mibps    float64
	fairness float64
	util     float64
	coordUS  float64
	ruleOps  float64
	msgs     float64
	bank     float64
	coupons  float64
}

// metricsOf derives one cell's study scalars from its result and its
// precomputed timeline summary.
func metricsOf(cr harness.CellResult, sc harness.Scenario, sum metrics.Summary) cellMetrics {
	res := cr.Result
	var cm cellMetrics
	cm.mibps = sum.OverallMiBps

	cm.fairness = priorityFairness(sc, cr, sum)

	var util float64
	for i := range res.DeviceBusy {
		util += res.Utilization(i)
	}
	if len(res.DeviceBusy) > 0 {
		cm.util = util / float64(len(res.DeviceBusy))
	}

	// TickTimes holds one entry per OSS walk per epoch for both GIFT and
	// AdapTBF, so epochs = entries / OSSes.
	if ticks := len(res.TickTimes); ticks > 0 {
		epochs := float64(ticks) / float64(cr.Cell.OSSes)
		var total time.Duration
		for _, d := range res.TickTimes {
			total += d
		}
		switch res.Policy {
		case sim.GIFT:
			// One controller does every walk serially: per-epoch serial
			// cost is the whole sweep. Same split for the deterministic
			// message counter.
			cm.coordUS = float64(total.Microseconds()) / epochs
			cm.msgs = float64(res.CtrlMsgs) / epochs
		default:
			// Decentralized: each target's controller works alone, so the
			// per-epoch serial cost is the mean per-target tick.
			cm.coordUS = float64(total.Microseconds()) / float64(ticks)
			cm.msgs = float64(res.CtrlMsgs) / float64(ticks)
		}
		cm.ruleOps = float64(res.RuleOps) / epochs
	}
	cm.bank = float64(res.GIFTBankEntries)
	cm.coupons = res.GIFTCouponsOutstanding
	return cm
}

// priorityFairness computes one cell's node-normalized Jain fairness
// index: x_j = bandwidth_j / nodes_j, so 1.0 means every job received
// exactly its compute-priority-proportional share. Shared by the scale
// and calibration studies.
func priorityFairness(sc harness.Scenario, cr harness.CellResult, sum metrics.Summary) float64 {
	jobs := sc.Jobs(cr.Cell.Params())
	var sx, sxx float64
	n := 0
	for _, j := range jobs {
		nodes := j.Nodes
		if nodes < 1 {
			nodes = 1
		}
		x := sum.PerJob[j.ID].AvgMiBps / float64(nodes)
		sx += x
		sxx += x * x
		n++
	}
	if n == 0 || sxx == 0 {
		return 0
	}
	return sx * sx / (float64(n) * sxx)
}

// buildScaleStudy folds the matrix cells into the study rows, gap rows,
// and their renderable tables.
func buildScaleStudy(res *harness.MatrixResult, sums []metrics.Summary, opt ScaleStudyOptions) (*Study, []experiments.Table) {
	type key struct {
		osses  int
		policy sim.Policy
	}
	type agg struct {
		mibps, fairness, util, coord, ruleOps, msgs, bank, coupons stats.Moments
		byseed                                                     map[int64]cellMetrics
	}
	groups := make(map[key]*agg)
	for i, cr := range res.Cells {
		if cr.Err != nil {
			continue
		}
		cm := metricsOf(cr, opt.Scenario, sums[i])
		k := key{cr.Cell.OSSes, cr.Cell.Policy}
		g, ok := groups[k]
		if !ok {
			g = &agg{byseed: make(map[int64]cellMetrics)}
			groups[k] = g
		}
		g.mibps.Add(cm.mibps)
		g.fairness.Add(cm.fairness)
		g.util.Add(cm.util)
		g.coord.Add(cm.coordUS)
		g.ruleOps.Add(cm.ruleOps)
		g.msgs.Add(cm.msgs)
		g.bank.Add(cm.bank)
		g.coupons.Add(cm.coupons)
		g.byseed[cr.Cell.Seed] = cm
	}

	level := opt.CILevel
	study := &Study{
		Name: GIFTScaleStudyName,
		Description: "Centralization overhead at scale: GIFT's single controller walks every " +
			"storage target serially each epoch and keeps a global coupon bank, while AdapTBF " +
			"runs one independent controller per target. Rows report per-policy seed-axis " +
			"statistics per OSS count; gaps report seed-paired GIFT-minus-AdapTBF differences.",
	}
	overhead := experiments.Table{
		Name: "gift-scale-overhead",
		Header: []string{"OSSes", "policy", "seeds", "mean MiB/s", "±CI",
			"fairness", "±CI", "utilization", "±CI",
			"coord µs/epoch", "±CI", "ctrl msgs/epoch", "rule ops/epoch", "coupon bank"},
	}
	gapT := experiments.Table{
		Name: "gift-scale-gap",
		Header: []string{"OSSes", "seeds", "GIFT vs AdapTBF MiB/s (%)", "±CI",
			"fairness Δ", "±CI", "coord ratio", "±CI", "msg ratio", "±CI"},
	}

	f1 := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	f3 := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	for _, osses := range opt.OSSes {
		for _, pol := range []sim.Policy{sim.NoBW, sim.AdapTBF, sim.GIFT} {
			g, ok := groups[key{osses, pol}]
			if !ok {
				continue
			}
			row := StudyRow{
				OSSes:                osses,
				Policy:               pol.String(),
				Seeds:                g.mibps.N(),
				MeanMiBps:            g.mibps.Mean(),
				CIMiBps:              g.mibps.CIHalfWidth(level),
				FairnessMean:         g.fairness.Mean(),
				FairnessCI:           g.fairness.CIHalfWidth(level),
				UtilizationMean:      g.util.Mean(),
				UtilizationCI:        g.util.CIHalfWidth(level),
				CoordUSPerEpochMean:  g.coord.Mean(),
				CoordUSPerEpochCI:    g.coord.CIHalfWidth(level),
				RuleOpsPerEpoch:      g.ruleOps.Mean(),
				CtrlMsgsPerEpochMean: g.msgs.Mean(),
				CtrlMsgsPerEpochCI:   g.msgs.CIHalfWidth(level),
				CouponBankEntries:    g.bank.Mean(),
				CouponsOutstanding:   g.coupons.Mean(),
			}
			study.Rows = append(study.Rows, row)
			overhead.Rows = append(overhead.Rows, []string{
				fmt.Sprintf("%d", osses), row.Policy, fmt.Sprintf("%d", row.Seeds),
				f1(row.MeanMiBps), f1(row.CIMiBps),
				f3(row.FairnessMean), f3(row.FairnessCI),
				f3(row.UtilizationMean), f3(row.UtilizationCI),
				f1(row.CoordUSPerEpochMean), f1(row.CoordUSPerEpochCI),
				f1(row.CtrlMsgsPerEpochMean),
				f1(row.RuleOpsPerEpoch), f1(row.CouponBankEntries),
			})
		}

		gift, okG := groups[key{osses, sim.GIFT}]
		adap, okA := groups[key{osses, sim.AdapTBF}]
		if !okG || !okA {
			continue
		}
		var dThr, dFair, rCoord, rMsgs stats.Moments
		var pairs int64
		// Walk seeds in declaration order, not map order: the fold must be
		// deterministic so identical runs emit identical documents.
		for _, seed := range opt.Seeds {
			gm, okG := gift.byseed[seed]
			am, okA := adap.byseed[seed]
			if !okG || !okA {
				continue
			}
			pairs++
			if am.mibps > 0 {
				dThr.Add((gm.mibps - am.mibps) / am.mibps * 100)
			}
			dFair.Add(gm.fairness - am.fairness)
			if am.coordUS > 0 {
				rCoord.Add(gm.coordUS / am.coordUS)
			}
			if am.msgs > 0 {
				rMsgs.Add(gm.msgs / am.msgs)
			}
		}
		gap := GapRow{
			OSSes:             osses,
			Seeds:             pairs,
			ThroughputPctMean: dThr.Mean(),
			ThroughputPctCI:   dThr.CIHalfWidth(level),
			ThroughputPctN:    dThr.N(),
			FairnessDeltaMean: dFair.Mean(),
			FairnessDeltaCI:   dFair.CIHalfWidth(level),
			CoordRatioMean:    rCoord.Mean(),
			CoordRatioCI:      rCoord.CIHalfWidth(level),
			CoordRatioN:       rCoord.N(),
			MsgRatioMean:      rMsgs.Mean(),
			MsgRatioCI:        rMsgs.CIHalfWidth(level),
			MsgRatioN:         rMsgs.N(),
		}
		study.Gaps = append(study.Gaps, gap)
		// Render unavailable statistics as "-", never as a numeric 0.
		thr, thrCI := "-", "-"
		if gap.ThroughputPctN > 0 {
			thr, thrCI = fmt.Sprintf("%+.1f", gap.ThroughputPctMean), f1(gap.ThroughputPctCI)
		}
		coord, coordCI := "-", "-"
		if gap.CoordRatioN > 0 {
			coord, coordCI = fmt.Sprintf("%.2f", gap.CoordRatioMean), fmt.Sprintf("%.2f", gap.CoordRatioCI)
		}
		msg, msgCI := "-", "-"
		if gap.MsgRatioN > 0 {
			msg, msgCI = fmt.Sprintf("%.2f", gap.MsgRatioMean), fmt.Sprintf("%.2f", gap.MsgRatioCI)
		}
		gapT.Rows = append(gapT.Rows, []string{
			fmt.Sprintf("%d", osses), fmt.Sprintf("%d", gap.Seeds),
			thr, thrCI,
			fmt.Sprintf("%+.3f", gap.FairnessDeltaMean), f3(gap.FairnessDeltaCI),
			coord, coordCI,
			msg, msgCI,
		})
	}
	return study, []experiments.Table{overhead, gapT}
}
