package report

import (
	"context"
	"fmt"
	"time"

	"adaptbf/internal/cluster"
	"adaptbf/internal/experiments"
	"adaptbf/internal/harness"
	"adaptbf/internal/obs"
	"adaptbf/internal/sim"
	"adaptbf/internal/stats"
)

// GateContentionStudyName is the Study kind of the built-in
// gate-contention study, and the value the CLI's -study flag accepts.
const GateContentionStudyName = "gate-contention"

// A GateContentionPoint is one (gate, concurrency) grid point folded
// over the seed axis. Latency statistics cover served RPCs; the
// lock-wait statistics come from the gate_lock_wait_ns histogram every
// gate observes at the shared requestGate seam, so the numbers are
// comparable across gate implementations by construction.
type GateContentionPoint struct {
	Concurrency int64 `json:"concurrency"`
	N           int64 `json:"n"` // completed seeds

	P99USMean float64 `json:"p99_us_mean"`
	P99USCI   float64 `json:"p99_us_ci"`
	MiBpsMean float64 `json:"mibps_mean"`
	MiBpsCI   float64 `json:"mibps_ci"`

	// LockWaitP99NsMean is the seed-mean of each cell's p99 time to
	// acquire a gate lock, in nanoseconds (bucketed upper bound).
	LockWaitP99NsMean float64 `json:"lock_wait_p99_ns_mean"`
	LockWaitP99NsCI   float64 `json:"lock_wait_p99_ns_ci"`
	// LockWaitCount totals gate-lock acquisitions across the point's
	// seeds — the histogram's sample count, which a smoke check can
	// assert is nonzero without claiming anything about magnitudes.
	LockWaitCount int64 `json:"lock_wait_count"`
}

// A GateContentionGate is one gate implementation's finished
// concurrency sweep.
type GateContentionGate struct {
	// Gate names the implementation: "tbf" (single-lock token bucket),
	// "sharded-tbf" (the same buckets striped over flow-hashed locks),
	// "edt" (sharded earliest-departure-time pacing), or "sfq".
	Gate string `json:"gate"`
	// Policy is the scheduling policy that exercises the gate
	// (StaticBW for the TBF pair, so bucket state is actually hit).
	Policy string `json:"policy"`
	// Shards is the gate's lock-stripe count (0 = single lock).
	Shards int `json:"shards"`

	Points []GateContentionPoint `json:"points"`
}

// A GateContention is the gate-contention section of a schema-v8
// document: per gate implementation, how p99 latency, served
// throughput, and gate-lock wait respond to runner concurrency.
type GateContention struct {
	Name          string  `json:"name"`
	Description   string  `json:"description"`
	Scenario      string  `json:"scenario"`
	Concurrencies []int64 `json:"concurrencies"`
	Seeds         []int64 `json:"seeds"`
	OSSes         int     `json:"osses"`
	DurationS     float64 `json:"duration_s"`

	Gates []GateContentionGate `json:"gates"`
}

// GateContentionStudyOptions parameterizes RunGateContentionStudy. The
// zero value sweeps runner concurrency {4, 16, 32} over seeds {1, 2, 3}
// on one OSS, 2 OSS-seconds per cell, comparing the single-lock TBF
// gate, the sharded TBF gate, EDT, and SFQ.
type GateContentionStudyOptions struct {
	// Concurrencies is the runner-concurrency axis (the scenario's
	// Scale: total concurrent client processes). Default {4, 16, 32}.
	Concurrencies []int64
	Seeds         []int64 // default {1, 2, 3}
	OSSes         int     // default 1
	// Shards is the sharded gates' lock-stripe count. Default
	// cluster.DefaultGateShards.
	Shards int
	// Duration caps each cell in OSS time. Live cells run on the wall
	// clock, so keep this small; default 2 s.
	Duration time.Duration
	// Speedup accelerates the live cells' device clocks
	// (harness.ClusterBackend.Speedup). Default 1: lock contention is a
	// wall-clock phenomenon, and accelerating the device only moves the
	// bottleneck away from the gate under study.
	Speedup float64
	// CellTimeout bounds each live cell's wall-clock run. Default 2 min.
	CellTimeout time.Duration

	Workers int
	CILevel float64 // default harness.DefaultCILevel
	// OnCell observes every finished cell.
	OnCell func(harness.CellResult)
}

func (o GateContentionStudyOptions) normalize() GateContentionStudyOptions {
	if len(o.Concurrencies) == 0 {
		o.Concurrencies = []int64{4, 16, 32}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if o.OSSes < 1 {
		o.OSSes = 1
	}
	if o.Shards < 2 {
		o.Shards = cluster.DefaultGateShards
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Speedup <= 0 {
		o.Speedup = 1
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 2 * time.Minute
	}
	if o.CILevel <= 0 || o.CILevel >= 1 {
		o.CILevel = harness.DefaultCILevel
	}
	return o
}

// A GateContentionStudy is a finished gate-contention sweep: the
// schema-v8 document (GateContention section filled) and the
// renderable/CSV-exportable report.
type GateContentionStudy struct {
	Document *Document
	Report   *experiments.Report
}

// gateVariant is one gate implementation under study: the scheduling
// policy that exercises it and the lock-stripe count standing it up.
type gateVariant struct {
	name   string
	policy sim.Policy
	shards int
}

// RunGateContentionStudy sweeps runner concurrency against four gate
// implementations on the live in-process backend and reports, per
// (gate, concurrency) point, seed-axis p99 latency, served throughput,
// and the p99 of gate_lock_wait_ns — the time runners spend waiting to
// acquire gate locks, observed identically for every gate at the
// requestGate seam. The TBF pair pins the claim under test: striping
// the same token buckets over flow-hashed locks (or replacing shared
// bucket state with EDT departure stamps) should cut lock wait at high
// concurrency, and this study measures by how much. Live cells are
// wall-clock: the numbers are measured, never deterministic.
func RunGateContentionStudy(opt GateContentionStudyOptions) (*GateContentionStudy, error) {
	opt = opt.normalize()

	// StaticBW for the TBF pair so rule-matched bucket state is on the
	// hot path of every request (NoBW would bypass the buckets).
	variants := []gateVariant{
		{"tbf", sim.StaticBW, 0},
		{"sharded-tbf", sim.StaticBW, opt.Shards},
		{"edt", sim.EDT, 0},
		{"sfq", sim.SFQ, 0},
	}

	gc := &GateContention{
		Name: GateContentionStudyName,
		Description: "Gate-contention sweep on the live backend: runner concurrency (the " +
			"gate-contention scenario's Scale — total concurrent client processes) against four " +
			"request-gate implementations. lock_wait_p99_ns_* folds each cell's gate_lock_wait_ns " +
			"histogram p99 over the seed axis; every gate observes that histogram at the same " +
			"requestGate seam, one sample per lock acquisition, so gates are comparable. The tbf " +
			"vs sharded-tbf pair isolates lock striping (same buckets, same StaticBW rules); edt " +
			"replaces shared bucket state with per-flow departure stamps; sfq is the fair-queueing " +
			"reference. Live cells are wall-clock and excluded from determinism claims.",
		Scenario:      "gate-contention",
		Concurrencies: opt.Concurrencies,
		Seeds:         opt.Seeds,
		OSSes:         opt.OSSes,
		DurationS:     opt.Duration.Seconds(),
	}

	table := experiments.Table{
		Name: "gate-contention",
		Header: []string{"gate", "policy", "shards", "conc", "n",
			"p99 (µs)", "±CI", "MiB/s", "±CI", "lock p99 (ns)", "±CI", "acquisitions"},
	}

	for _, v := range variants {
		g, err := runGateSweep(v, opt)
		if err != nil {
			return nil, err
		}
		gc.Gates = append(gc.Gates, g)
		for _, p := range g.Points {
			table.Rows = append(table.Rows, []string{
				g.Gate, g.Policy, fmt.Sprintf("%d", g.Shards),
				fmt.Sprintf("%d", p.Concurrency), fmt.Sprintf("%d", p.N),
				fmt.Sprintf("%.1f", p.P99USMean), fmt.Sprintf("%.1f", p.P99USCI),
				fmt.Sprintf("%.1f", p.MiBpsMean), fmt.Sprintf("%.1f", p.MiBpsCI),
				fmt.Sprintf("%.0f", p.LockWaitP99NsMean), fmt.Sprintf("%.0f", p.LockWaitP99NsCI),
				fmt.Sprintf("%d", p.LockWaitCount),
			})
		}
	}

	doc := &Document{
		SchemaVersion:  SchemaVersion,
		Generator:      "adaptbf",
		Kind:           GateContentionStudyName,
		Title:          "Gate-contention study (lock wait vs runner concurrency)",
		CILevel:        opt.CILevel,
		Workers:        opt.Workers,
		GateContention: gc,
	}
	rep := &experiments.Report{
		ID:     GateContentionStudyName,
		Title:  doc.Title,
		Tables: []experiments.Table{table},
	}
	return &GateContentionStudy{Document: doc, Report: rep}, nil
}

// runGateSweep runs one gate variant's full concurrency × seed grid on
// the live backend and folds each concurrency point over the seed axis.
func runGateSweep(v gateVariant, opt GateContentionStudyOptions) (GateContentionGate, error) {
	g := GateContentionGate{Gate: v.name, Policy: v.policy.String(), Shards: v.shards}
	m := harness.Matrix{
		Scenarios: []harness.Scenario{harness.GateContentionScenario()},
		Policies:  []sim.Policy{v.policy},
		Scales:    opt.Concurrencies,
		OSSes:     []int{opt.OSSes},
		Seeds:     opt.Seeds,
		Duration:  opt.Duration,
	}
	res, err := harness.Run(context.Background(), m,
		harness.WithWorkers(opt.Workers), harness.WithProgress(opt.OnCell),
		harness.WithObs(), harness.WithCellTimeout(opt.CellTimeout),
		harness.WithBackend(&harness.ClusterBackend{Speedup: opt.Speedup, TBFShards: v.shards}))
	if res == nil {
		return g, fmt.Errorf("gate-contention: gate %s: %w", v.name, err)
	}
	sums := res.Summaries()

	type fold struct {
		p99, mibps, lockP99 stats.Moments
		acquisitions        int64
	}
	folds := make(map[int64]*fold, len(opt.Concurrencies))
	for i, cr := range res.Cells {
		if cr.Err != nil {
			continue
		}
		f := folds[cr.Cell.Scale]
		if f == nil {
			f = &fold{}
			folds[cr.Cell.Scale] = f
		}
		if d := cr.LatencyDigest; d != nil && d.N() > 0 {
			f.p99.Add(float64(d.Quantile(99).Nanoseconds()) / 1e3)
		}
		f.mibps.Add(sums[i].OverallMiBps)
		if cr.Obs != nil {
			h := cr.Obs.Histograms[obs.HistGateLockWait]
			f.lockP99.Add(float64(h.Quantile(0.99)))
			f.acquisitions += h.Count
		}
	}
	for _, c := range opt.Concurrencies {
		f := folds[c]
		if f == nil || f.p99.N() == 0 {
			return g, fmt.Errorf("gate-contention: gate %s concurrency %d produced no latency samples (%v)", v.name, c, err)
		}
		g.Points = append(g.Points, GateContentionPoint{
			Concurrency:       c,
			N:                 f.p99.N(),
			P99USMean:         f.p99.Mean(),
			P99USCI:           f.p99.CIHalfWidth(opt.CILevel),
			MiBpsMean:         f.mibps.Mean(),
			MiBpsCI:           f.mibps.CIHalfWidth(opt.CILevel),
			LockWaitP99NsMean: f.lockP99.Mean(),
			LockWaitP99NsCI:   f.lockP99.CIHalfWidth(opt.CILevel),
			LockWaitCount:     f.acquisitions,
		})
	}
	return g, nil
}
