package report

import (
	"encoding/json"
	"testing"
	"time"

	"adaptbf/internal/device"
	"adaptbf/internal/harness"
	"adaptbf/internal/sim"
	"adaptbf/internal/workload"
)

// calTestScenario is a tiny two-job workload sized for wall-clock cells:
// 2 jobs × 2 procs × 8 RPCs of 64 KiB each.
func calTestScenario() harness.Scenario {
	return harness.Scenario{
		Name: "cal-smoke",
		Jobs: func(p harness.CellParams) []workload.Job {
			procs := workload.Replicate(workload.Pattern{FileBytes: 8 * 64 << 10, RPCBytes: 64 << 10}, 2)
			return []workload.Job{
				{ID: "small.n01", Nodes: 1, Procs: procs},
				{ID: "big.n04", Nodes: 4, Procs: procs},
			}
		},
	}
}

func calTestOptions() CalibrationStudyOptions {
	return CalibrationStudyOptions{
		Scenario: calTestScenario(),
		Policies: []sim.Policy{sim.NoBW, sim.StaticBW, sim.SFQ, sim.AdapTBF, sim.GIFT},
		OSSes:    []int{2},
		Seeds:    []int64{1, 2},
		Scale:    1,
		Duration: 30 * time.Second,
		Speedup:  1,
		Device: device.Params{
			BytesPerSec:        4 << 30,
			PerRPCOverhead:     5 * time.Microsecond,
			ConcurrencyPenalty: 200 * time.Nanosecond,
		},
		Workers: 4,
	}
}

// TestCalibrationStudyEndToEnd runs the full five-policy calibration on
// a tiny grid: both backends complete every cell, the document carries
// the versioned calibration section with one row per policy×metric, the
// live grid's cells are exported with the "live" backend label, and the
// document's fingerprint is the (deterministic) sim grid's.
func TestCalibrationStudyEndToEnd(t *testing.T) {
	st, err := RunCalibrationStudy(calTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(st.Sim.Cells); n != 10 || len(st.Live.Cells) != 10 {
		t.Fatalf("grids hold %d sim / %d live cells, want 10 each", n, len(st.Live.Cells))
	}
	for _, cr := range st.Live.Cells {
		if cr.Err != nil {
			t.Fatalf("live cell %v failed: %v", cr.Cell, cr.Err)
		}
		if cr.Backend != "live" {
			t.Fatalf("live cell %v backend = %q", cr.Cell, cr.Backend)
		}
	}

	doc := st.Document
	if doc.SchemaVersion != SchemaVersion || doc.Kind != CalibrationStudyName {
		t.Fatalf("document schema v%d kind %q", doc.SchemaVersion, doc.Kind)
	}
	if st.Remote != nil || doc.Calibration.RemoteCells != nil {
		t.Fatal("remote half ran without being requested")
	}
	if doc.Fingerprint != st.Sim.Fingerprint() {
		t.Fatal("document fingerprint is not the sim grid's")
	}
	cal := doc.Calibration
	if cal == nil {
		t.Fatal("document has no calibration section")
	}
	if want := 5 * len(calibrationMetrics); len(cal.Rows) != want {
		t.Fatalf("calibration has %d rows, want %d (5 policies × %d metrics)",
			len(cal.Rows), want, len(calibrationMetrics))
	}
	for _, row := range cal.Rows {
		if row.Pairs != 2 {
			t.Fatalf("row %s/%s paired %d cells, want 2", row.Policy, row.Metric, row.Pairs)
		}
		if row.SimMean <= 0 || row.LiveMean <= 0 {
			t.Fatalf("row %s/%s has non-positive means: sim %.3f live %.3f",
				row.Policy, row.Metric, row.SimMean, row.LiveMean)
		}
		if row.DivergencePctN == 0 {
			t.Fatalf("row %s/%s has no divergence pairs", row.Policy, row.Metric)
		}
	}
	if len(cal.LiveCells) != 10 {
		t.Fatalf("calibration exports %d live cells, want 10", len(cal.LiveCells))
	}
	for _, c := range cal.LiveCells {
		if c.Backend != "live" || c.Error != "" {
			t.Fatalf("exported live cell %+v", c)
		}
	}

	// The divergence table renders one row per policy×metric and the
	// live tables ride along under distinct names.
	names := map[string]bool{}
	for _, tb := range st.Report.Tables {
		names[tb.Name] = true
	}
	for _, want := range []string{"matrix-cells", "live-matrix-cells", "calibration-divergence"} {
		if !names[want] {
			t.Fatalf("report is missing table %q (have %v)", want, names)
		}
	}

	// The document marshals (the calibration section round-trips).
	buf, err := doc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Calibration == nil || len(back.Calibration.Rows) != len(cal.Rows) {
		t.Fatal("calibration section did not survive the JSON round trip")
	}
}

// TestCalibrationOutlierFlag pins the production flagging rule
// (isOutlier, the one buildCalibration applies): |mean divergence|
// above the threshold flags the row; inside the threshold, a missing
// pair count, or an exact threshold hit does not.
func TestCalibrationOutlierFlag(t *testing.T) {
	cases := []struct {
		mean float64
		n    int64
		want bool
	}{
		{35, 2, true},   // above threshold
		{0, 2, false},   // no divergence
		{10, 2, false},  // inside threshold
		{-60, 2, true},  // negative beyond -threshold
		{-10, 2, false}, // negative inside threshold
		{25, 2, false},  // exactly at threshold: not flagged
		{100, 0, false}, // no pairs: divergence unavailable, never flagged
	}
	for _, tc := range cases {
		if got := isOutlier(tc.mean, tc.n, 25); got != tc.want {
			t.Errorf("isOutlier(%v, %d, 25) = %v, want %v", tc.mean, tc.n, got, tc.want)
		}
	}
}

// TestCalibrationToleratesLiveCellFailures: a policy with no live
// implementation fails its live cells; the study still completes with
// rows for the healthy policies, counts the failures, and exports the
// failed cells with their errors.
func TestCalibrationToleratesLiveCellFailures(t *testing.T) {
	opt := calTestOptions()
	// sim runs an unknown policy as plain FCFS; the live backend rejects
	// it — a deterministic stand-in for a flaky live cell.
	opt.Policies = []sim.Policy{sim.NoBW, sim.Policy(99)}
	st, err := RunCalibrationStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	cal := st.Document.Calibration
	if cal.LiveFailedCells != 2 || cal.SimFailedCells != 0 {
		t.Fatalf("failed-cell counts: sim %d live %d, want 0/2", cal.SimFailedCells, cal.LiveFailedCells)
	}
	if want := len(calibrationMetrics); len(cal.Rows) != want {
		t.Fatalf("rows = %d, want %d (NoBW only; the failed policy pairs nothing)", len(cal.Rows), want)
	}
	for _, row := range cal.Rows {
		if row.Policy != sim.NoBW.String() {
			t.Fatalf("unexpected row for policy %q", row.Policy)
		}
	}
	failed := 0
	for _, c := range cal.LiveCells {
		if c.Error != "" {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("exported live cells carry %d errors, want 2", failed)
	}
}

// TestCalibrationFailsWhenNothingPairs: when no cell completes on both
// backends the study aborts instead of emitting an empty report.
func TestCalibrationFailsWhenNothingPairs(t *testing.T) {
	opt := calTestOptions()
	opt.Policies = []sim.Policy{sim.Policy(99)}
	if _, err := RunCalibrationStudy(opt); err == nil {
		t.Fatal("study with zero usable pairs succeeded")
	}
}

// TestCalibrationRejectsFaultsWithoutRemote: the fault profile only
// applies to the remote half, so requesting one without it is a
// configuration error, not a silent no-op.
func TestCalibrationRejectsFaultsWithoutRemote(t *testing.T) {
	opt := calTestOptions()
	f, err := harness.ParseFaultProfile("latency=1ms")
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = f
	if _, err := RunCalibrationStudy(opt); err == nil {
		t.Fatal("faults without the remote half accepted")
	}
}

// TestCalibrationStudyRemote runs the three-substrate study on a minimal
// grid: the document's calibration section grows the remote column —
// remote cells exported with the "remote" backend label, rows carrying
// remote means and (remote−sim)/sim divergence, and the injected fault
// profile recorded.
func TestCalibrationStudyRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns node processes")
	}
	opt := calTestOptions()
	opt.Policies = []sim.Policy{sim.NoBW, sim.AdapTBF}
	opt.Seeds = []int64{1}
	opt.Remote = true
	f, err := harness.ParseFaultProfile("latency=1ms")
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = f
	st, err := RunCalibrationStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remote == nil || len(st.Remote.Cells) != 2 {
		t.Fatalf("remote grid: %+v", st.Remote)
	}
	cal := st.Document.Calibration
	if cal.Faults != "latency=1ms" {
		t.Fatalf("calibration records faults %q", cal.Faults)
	}
	if len(cal.RemoteCells) != 2 || cal.RemoteFailedCells != 0 {
		t.Fatalf("remote cells: %d exported, %d failed", len(cal.RemoteCells), cal.RemoteFailedCells)
	}
	for _, c := range cal.RemoteCells {
		if c.Backend != "remote" || c.Error != "" {
			t.Fatalf("exported remote cell %+v", c)
		}
	}
	if want := 2 * len(calibrationMetrics); len(cal.Rows) != want {
		t.Fatalf("calibration has %d rows, want %d", len(cal.Rows), want)
	}
	for _, row := range cal.Rows {
		if row.RemotePairs != 1 {
			t.Fatalf("row %s/%s remote pairs = %d, want 1", row.Policy, row.Metric, row.RemotePairs)
		}
		if row.RemoteMean <= 0 {
			t.Fatalf("row %s/%s remote mean %.3f", row.Policy, row.Metric, row.RemoteMean)
		}
	}
	names := map[string]bool{}
	for _, tb := range st.Report.Tables {
		names[tb.Name] = true
		if tb.Name == "calibration-divergence" && len(tb.Header) != 15 {
			t.Fatalf("divergence table header %v lacks the remote columns", tb.Header)
		}
	}
	if !names["remote-matrix-cells"] {
		t.Fatalf("report is missing the remote tables (have %v)", names)
	}
}
