package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaptbf/internal/admission"
	"adaptbf/internal/harness"
	"adaptbf/internal/stats"
)

// fastSaturationOptions keeps a study cheap: one seed, a short simulated
// window, a small ramp ceiling.
func fastSaturationOptions() SaturationStudyOptions {
	return SaturationStudyOptions{
		Admissions: []admission.Config{{}},
		Seeds:      []int64{1},
		MaxScale:   4,
		Duration:   5 * time.Second,
	}
}

// TestSaturationStudyCensored: an SLO no simulated workload can breach
// censors the bisection at the ramp ceiling — capacity is a lower
// bound, the flag says so, and the exponential ramp probed exactly
// 1, 2, 4 (ascending, no bisection needed).
func TestSaturationStudyCensored(t *testing.T) {
	opt := fastSaturationOptions()
	opt.SLOP99 = time.Hour
	st, err := RunSaturationStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	doc := st.Document
	if doc.SchemaVersion != SchemaVersion || doc.Kind != SaturationStudyName {
		t.Fatalf("document header: schema %d kind %q", doc.SchemaVersion, doc.Kind)
	}
	if doc.Saturation == nil || len(doc.Saturation.Policies) != 1 {
		t.Fatalf("saturation section: %+v", doc.Saturation)
	}
	pol := doc.Saturation.Policies[0]
	if pol.Admission != "always" {
		t.Fatalf("policy label %q", pol.Admission)
	}
	if !pol.Censored || pol.CapacityScale != 4 {
		t.Fatalf("unbreachable SLO: capacity %d censored %v, want 4 censored", pol.CapacityScale, pol.Censored)
	}
	wantScales := []int64{1, 2, 4}
	if len(pol.Probes) != len(wantScales) {
		t.Fatalf("probed %d scales, want %v", len(pol.Probes), wantScales)
	}
	for i, p := range pol.Probes {
		if p.Scale != wantScales[i] {
			t.Fatalf("probe %d at scale %d, want %d", i, p.Scale, wantScales[i])
		}
		if p.Breach {
			t.Fatalf("scale %d breached a 1h SLO", p.Scale)
		}
		if p.N != 1 || p.P99USMean <= 0 {
			t.Fatalf("probe %d stats: n=%d p99=%f", i, p.N, p.P99USMean)
		}
		if p.GoodputPctMean != 100 || p.RejectedMean != 0 || p.ShedMean != 0 {
			t.Fatalf("always-admit probe refused work: %+v", p)
		}
	}
	if pol.AtKnee == nil || pol.AtKnee.Scale != 4 {
		t.Fatalf("at-knee: %+v", pol.AtKnee)
	}
}

// TestSaturationStudyNoCapacity: an SLO nothing can meet breaches at
// scale 1 — capacity 0, no knee stats, exactly one probe.
func TestSaturationStudyNoCapacity(t *testing.T) {
	opt := fastSaturationOptions()
	opt.SLOP99 = time.Nanosecond
	st, err := RunSaturationStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	pol := st.Document.Saturation.Policies[0]
	if pol.CapacityScale != 0 || pol.Censored {
		t.Fatalf("unmeetable SLO: capacity %d censored %v, want 0 uncensored", pol.CapacityScale, pol.Censored)
	}
	if pol.AtKnee != nil {
		t.Fatalf("no capacity, but knee stats present: %+v", pol.AtKnee)
	}
	if len(pol.Probes) != 1 || pol.Probes[0].Scale != 1 || !pol.Probes[0].Breach {
		t.Fatalf("probes: %+v", pol.Probes)
	}
}

// TestSaturationStudyBisectionInvariants runs a real multi-policy
// bisection against a mid-range SLO and checks the properties that hold
// wherever the knee lands: probes ascend, the knee probe meets the SLO,
// an uncensored knee has a breaching probe above it, and the document
// round-trips through JSON with its v5 section intact — the acceptance
// shape for -study saturation.
func TestSaturationStudyBisectionInvariants(t *testing.T) {
	opt := fastSaturationOptions()
	opt.MaxScale = 8
	opt.SLOP99 = 4 * time.Millisecond
	opt.Admissions = []admission.Config{
		{},
		{Policy: admission.PolicyDeadlineQueue, QueueLimit: 512, Deadline: 2 * time.Millisecond},
	}
	st, err := RunSaturationStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	sat := st.Document.Saturation
	if got := sat.SLOP99US; got != 4000 {
		t.Fatalf("slo_p99_us = %f, want 4000", got)
	}
	if len(sat.Policies) != 2 {
		t.Fatalf("policies: %d", len(sat.Policies))
	}
	for _, pol := range sat.Policies {
		if pol.CapacityScale < 0 || pol.CapacityScale > opt.MaxScale {
			t.Fatalf("%s: capacity %d outside [0, %d]", pol.Admission, pol.CapacityScale, opt.MaxScale)
		}
		var kneeProbe *SaturationProbe
		var breachAbove bool
		for i := range pol.Probes {
			p := &pol.Probes[i]
			if i > 0 && p.Scale <= pol.Probes[i-1].Scale {
				t.Fatalf("%s: probes out of order at %d", pol.Admission, i)
			}
			if p.Scale == pol.CapacityScale {
				kneeProbe = p
			}
			if p.Scale > pol.CapacityScale && p.Breach {
				breachAbove = true
			}
			if p.GoodputPctMean < 0 || p.GoodputPctMean > 100 {
				t.Fatalf("%s scale %d: goodput %.1f%%", pol.Admission, p.Scale, p.GoodputPctMean)
			}
		}
		switch {
		case pol.CapacityScale == 0:
			if pol.AtKnee != nil {
				t.Fatalf("%s: capacity 0 with knee stats", pol.Admission)
			}
		default:
			if kneeProbe == nil || kneeProbe.Breach {
				t.Fatalf("%s: knee probe missing or breaching: %+v", pol.Admission, kneeProbe)
			}
			if pol.AtKnee == nil || pol.AtKnee.Scale != pol.CapacityScale {
				t.Fatalf("%s: at-knee stats missing: %+v", pol.Admission, pol.AtKnee)
			}
			if !pol.Censored && !breachAbove {
				t.Fatalf("%s: uncensored knee %d with no breaching probe above it", pol.Admission, pol.CapacityScale)
			}
		}
	}
	// The knee and probe tables render one row per policy / per probe.
	if len(st.Report.Tables) != 2 {
		t.Fatalf("tables: %d", len(st.Report.Tables))
	}
	if got := len(st.Report.Tables[0].Rows); got != 2 {
		t.Fatalf("capacity table rows: %d", got)
	}

	// JSON round-trip: the artifact CI consumes.
	path := filepath.Join(t.TempDir(), "saturation.json")
	if err := st.Document.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || back.Kind != SaturationStudyName ||
		back.Saturation == nil || len(back.Saturation.Policies) != 2 {
		t.Fatalf("round-tripped document lost its saturation section: %+v", back.Saturation)
	}
}

// TestStarvationOf pins the per-job tail analysis: six jobs where one
// job's p99 sits 10× over the median is one starved job, with the
// factor and percentile fields tracking the inputs.
func TestStarvationOf(t *testing.T) {
	mk := func(job string, lat time.Duration) harness.JobDigest {
		d := &stats.Digest{}
		for i := 0; i < 100; i++ {
			d.Add(lat)
		}
		return harness.JobDigest{Job: job, Digest: d}
	}
	jds := []harness.JobDigest{
		mk("a", time.Millisecond), mk("b", time.Millisecond), mk("c", time.Millisecond),
		mk("d", time.Millisecond), mk("e", time.Millisecond),
		mk("tail", 10*time.Millisecond),
	}
	s := starvationOf(jds)
	if s == nil {
		t.Fatal("no starvation section for 6 jobs")
	}
	if s.Jobs != 6 {
		t.Fatalf("jobs = %d", s.Jobs)
	}
	if s.StarvedJobs != 1 {
		t.Fatalf("starved = %d, want 1 (tail is 10× median, K = %v)", s.StarvedJobs, StarvationK)
	}
	// Digest bucketing is approximate; accept a loose band around the
	// exact values.
	if s.MedianJobP99US < 800 || s.MedianJobP99US > 1300 {
		t.Fatalf("median job p99 = %.0fµs, want ~1000", s.MedianJobP99US)
	}
	if s.MaxJobP99US < 8000 || s.MaxJobP99US > 13000 {
		t.Fatalf("max job p99 = %.0fµs, want ~10000", s.MaxJobP99US)
	}
	if s.StarvationFactor < 7 || s.StarvationFactor > 14 {
		t.Fatalf("starvation factor = %.1f, want ~10", s.StarvationFactor)
	}
	if s.P99JobP99US < s.MedianJobP99US || s.P99JobP99US > s.MaxJobP99US {
		t.Fatalf("p99-of-p99s %.0f outside [median %.0f, max %.0f]",
			s.P99JobP99US, s.MedianJobP99US, s.MaxJobP99US)
	}

	// Fewer than two jobs: no distribution to analyze.
	if starvationOf(jds[:1]) != nil || starvationOf(nil) != nil {
		t.Fatal("starvation section produced for <2 jobs")
	}
	// A uniform mix starves nobody.
	if u := starvationOf(jds[:5]); u == nil || u.StarvedJobs != 0 {
		t.Fatalf("uniform jobs: %+v", u)
	}
}
