package report

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptbf/internal/harness"
	"adaptbf/internal/sim"
)

func gateMatrixResult(t *testing.T) *harness.MatrixResult {
	t.Helper()
	res, err := harness.Run(context.Background(), harness.Matrix{
		Scenarios: []harness.Scenario{harness.StripedSequentialScenario()},
		Policies:  []sim.Policy{sim.NoBW, sim.AdapTBF},
		Scales:    []int64{512},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPolicyP99sAndCheckGate(t *testing.T) {
	res := gateMatrixResult(t)
	pols, p99s := PolicyP99s(res)
	if len(pols) != 2 {
		t.Fatalf("policies = %v, want 2", pols)
	}
	for _, p := range pols {
		if p99s[p] <= 0 {
			t.Fatalf("policy %s p99 = %v", p, p99s[p])
		}
	}
	// The simulator is deterministic, so the measured p99s ARE the
	// tracked values; a ±20% interval around them must pass.
	pass := GateSpec{Policies: map[string]GateInterval{}}
	for p, v := range p99s {
		pass.Policies[p] = GateInterval{P99USMin: v * 0.8, P99USMax: v * 1.2}
	}
	if err := CheckGate(res, pass); err != nil {
		t.Fatalf("in-interval gate failed: %v", err)
	}
	// An interval the measurement cannot reach must fail, naming the
	// policy.
	fail := GateSpec{Policies: map[string]GateInterval{
		sim.AdapTBF.String(): {P99USMin: 1, P99USMax: 2},
	}}
	err := CheckGate(res, fail)
	if err == nil || !strings.Contains(err.Error(), "AdapTBF") {
		t.Fatalf("out-of-interval gate: err = %v", err)
	}
	// A gated policy that did not run must fail loudly, not pass
	// vacuously.
	missing := GateSpec{Policies: map[string]GateInterval{
		sim.GIFT.String(): {P99USMin: 0, P99USMax: 1e12},
	}}
	if err := CheckGate(res, missing); err == nil {
		t.Fatal("gate on an absent policy passed vacuously")
	}
}

func TestLoadGate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(good, []byte(`{
		"history": [],
		"regression_gate": {
			"grid": "default",
			"policies": {"AdapTBF": {"p99_us_min": 10, "p99_us_max": 20}}
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadGate(good)
	if err != nil {
		t.Fatal(err)
	}
	if iv := spec.Policies["AdapTBF"]; iv.P99USMin != 10 || iv.P99USMax != 20 {
		t.Fatalf("loaded interval %+v", iv)
	}
	// A file without the gate section must refuse, not gate nothing.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"history": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGate(empty); err == nil {
		t.Fatal("gateless file accepted")
	}
	if _, err := LoadGate(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckGateThroughput(t *testing.T) {
	spec := GateSpec{GateThroughput: &GateThroughputSpec{
		Gates: map[string]GateThroughputBound{
			"tbf": {OpsPerSec: 1e6},
			"edt": {OpsPerSec: 1e6},
		},
	}}
	// Exactly at the 20% floor passes; anything below it fails, naming
	// the gate.
	floor := 1e6 * (1 - GateThroughputTolerance)
	if err := CheckGateThroughput(spec, map[string]float64{"tbf": floor, "edt": 2e6}); err != nil {
		t.Fatalf("at-floor throughput failed: %v", err)
	}
	err := CheckGateThroughput(spec, map[string]float64{"tbf": floor - 1, "edt": 2e6})
	if err == nil || !strings.Contains(err.Error(), `"tbf"`) {
		t.Fatalf("below-floor gate: err = %v", err)
	}
	// A tracked gate that was not measured must fail loudly, not pass
	// vacuously.
	if err := CheckGateThroughput(spec, map[string]float64{"tbf": 1e6}); err == nil {
		t.Fatal("unmeasured tracked gate passed vacuously")
	}
	// A spec without the section checks nothing.
	if err := CheckGateThroughput(GateSpec{}, nil); err != nil {
		t.Fatalf("sectionless spec: %v", err)
	}
}

// TestGateMatchesTrackedFile: the repository's own BENCH_matrix.json
// gate must pass against a fresh run of the default CLI grid — this is
// the same check CI's gate step performs (its gate-throughput half is
// wall-clock and exercised by the CLI, not here; this test only pins
// that the tracked file carries the section).
func TestGateMatchesTrackedFile(t *testing.T) {
	spec, err := LoadGate(filepath.Join("..", "..", "BENCH_matrix.json"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.GateThroughput == nil || len(spec.GateThroughput.Gates) != 3 {
		t.Fatalf("tracked gate_throughput section missing or wrong size: %+v", spec.GateThroughput)
	}
	res, err := harness.Run(context.Background(), harness.Matrix{
		Scenarios: harness.DefaultScenarios(),
		Policies:  []sim.Policy{sim.NoBW, sim.StaticBW, sim.AdapTBF, sim.SFQ},
		Scales:    []int64{64},
		OSSes:     []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGate(res, spec); err != nil {
		t.Fatalf("tracked gate failed on the default grid: %v", err)
	}
}
