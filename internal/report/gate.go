package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"adaptbf/internal/cluster"
	"adaptbf/internal/harness"
	"adaptbf/internal/stats"
)

// A GateSpec is a digest-based regression gate: for each policy, the
// interval its p99 RPC latency (µs, merged over every cell the policy
// ran in the gated grid) must fall inside. The tracked intervals live in
// BENCH_matrix.json at the repository root under "regression_gate",
// captured from the deterministic default grid — the simulator is
// bit-reproducible, so any excursion is a real behavioural change, and
// the interval width only buys tolerance against intentional small
// retunings, not noise.
type GateSpec struct {
	// Grid documents the grid the intervals were captured on.
	Grid string `json:"grid,omitempty"`
	// Policies maps a policy name (sim.Policy.String()) to its bounds.
	Policies map[string]GateInterval `json:"policies"`
	// GateThroughput, when present, adds the live gate-throughput half
	// of the check: each tracked gate implementation is re-measured
	// in-process and must stay within GateThroughputTolerance of its
	// recorded ops/sec.
	GateThroughput *GateThroughputSpec `json:"gate_throughput,omitempty"`
}

// A GateInterval bounds one policy's merged p99 latency in microseconds.
type GateInterval struct {
	P99USMin float64 `json:"p99_us_min"`
	P99USMax float64 `json:"p99_us_max"`
}

// LoadGate reads a GateSpec from a JSON file carrying a top-level
// "regression_gate" field (BENCH_matrix.json's layout). A file without
// the field is an error: a gate that silently checks nothing would pass
// forever.
func LoadGate(path string) (GateSpec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return GateSpec{}, err
	}
	var wrapper struct {
		RegressionGate *GateSpec `json:"regression_gate"`
	}
	if err := json.Unmarshal(buf, &wrapper); err != nil {
		return GateSpec{}, fmt.Errorf("report: parsing gate file %s: %w", path, err)
	}
	if wrapper.RegressionGate == nil || len(wrapper.RegressionGate.Policies) == 0 {
		return GateSpec{}, fmt.Errorf("report: %s carries no regression_gate.policies section", path)
	}
	return *wrapper.RegressionGate, nil
}

// PolicyP99s merges every non-failed cell's latency digest by policy and
// reports each policy's p99 in microseconds — the quantity CheckGate
// gates on, exported so a re-capture can print the values to track.
// Policies appear in first-appearance (canonical cell) order.
func PolicyP99s(res *harness.MatrixResult) (policies []string, p99us map[string]float64) {
	merged := map[string]*stats.Digest{}
	for _, cr := range res.Cells {
		if cr.Err != nil || cr.LatencyDigest == nil {
			continue
		}
		name := cr.Cell.Policy.String()
		d, ok := merged[name]
		if !ok {
			d = stats.NewDigest()
			merged[name] = d
			policies = append(policies, name)
		}
		d.Merge(cr.LatencyDigest)
	}
	p99us = make(map[string]float64, len(merged))
	for name, d := range merged {
		if d.N() > 0 {
			p99us[name] = us(d.Quantile(99))
		}
	}
	return policies, p99us
}

// CheckGate verifies a merged matrix against the tracked intervals: it
// fails if any gated policy's merged p99 falls outside its interval, or
// if a gated policy did not run at all (a gate that cannot observe its
// policy must fail loudly, not pass vacuously). Policies the run swept
// but the spec does not track are ignored. All violations are joined.
func CheckGate(res *harness.MatrixResult, spec GateSpec) error {
	_, p99s := PolicyP99s(res)
	names := make([]string, 0, len(spec.Policies))
	for name := range spec.Policies {
		names = append(names, name)
	}
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		iv := spec.Policies[name]
		got, ok := p99s[name]
		if !ok {
			errs = append(errs, fmt.Errorf("report: gated policy %q produced no latency samples in this run", name))
			continue
		}
		if got < iv.P99USMin || got > iv.P99USMax {
			errs = append(errs, fmt.Errorf("report: policy %q p99 = %.1fµs outside tracked interval [%.1f, %.1f]µs",
				name, got, iv.P99USMin, iv.P99USMax))
		}
	}
	return errors.Join(errs...)
}

// GateThroughputTolerance is the fraction a gate's measured throughput
// may fall below its recorded ops/sec before the check fails: 0.20
// means anything under 80% of the baseline is a regression. Unlike the
// deterministic p99 intervals, throughput is wall-clock, so the bound
// is one-sided — running faster than the baseline is never an error.
const GateThroughputTolerance = 0.20

// Best-of-3 150ms windows per gate: long enough for the scheduler to
// spread enqueuers across cores, short enough that the whole check adds
// ~1.5s to a -gate run, and the max over passes sheds one-off noise.
const (
	gateThroughputWindow = 150 * time.Millisecond
	gateThroughputPasses = 3
)

// A GateThroughputSpec is the gate-throughput section of a regression
// gate: per gate implementation (cluster.GateThroughputNames), the
// ops/sec baseline captured by MeasureGateThroughputs on the tracked
// machine class. Wall-clock, so baselines only bind runs on comparable
// hardware — re-capture alongside a machine change, in the commit that
// explains it.
type GateThroughputSpec struct {
	// Comment and Machine document the capture, like GateSpec.Grid.
	Comment string `json:"comment,omitempty"`
	Machine string `json:"machine,omitempty"`
	// Gates maps a gate name to its recorded baseline.
	Gates map[string]GateThroughputBound `json:"gates"`
}

// A GateThroughputBound records one gate implementation's baseline
// throughput in requests through the gate per second.
type GateThroughputBound struct {
	OpsPerSec float64 `json:"ops_per_sec"`
}

// GateNames reports the tracked gate names in sorted order.
func (s *GateThroughputSpec) GateNames() []string {
	names := make([]string, 0, len(s.Gates))
	for name := range s.Gates {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MeasureGateThroughputs re-measures every gate the spec tracks
// (best of gateThroughputPasses windows each, via
// cluster.MeasureGateThroughput) and returns name → measured ops/sec.
// A tracked gate the cluster package cannot stand up is an error: the
// check must not pass vacuously because a gate was renamed.
func MeasureGateThroughputs(spec GateSpec) (map[string]float64, error) {
	if spec.GateThroughput == nil {
		return nil, nil
	}
	measured := make(map[string]float64, len(spec.GateThroughput.Gates))
	for _, name := range spec.GateThroughput.GateNames() {
		var best float64
		for pass := 0; pass < gateThroughputPasses; pass++ {
			ops, err := cluster.MeasureGateThroughput(name, gateThroughputWindow)
			if err != nil {
				return nil, fmt.Errorf("report: measuring gate %q throughput: %w", name, err)
			}
			if ops > best {
				best = ops
			}
		}
		measured[name] = best
	}
	return measured, nil
}

// CheckGateThroughput verifies measured gate throughputs against the
// spec's recorded baselines: any gate more than GateThroughputTolerance
// below its ops/sec baseline fails, as does a tracked gate that was not
// measured at all. All violations are joined. A spec without a
// gate_throughput section checks nothing and returns nil.
func CheckGateThroughput(spec GateSpec, measured map[string]float64) error {
	if spec.GateThroughput == nil {
		return nil
	}
	var errs []error
	for _, name := range spec.GateThroughput.GateNames() {
		bound := spec.GateThroughput.Gates[name]
		got, ok := measured[name]
		if !ok || got <= 0 {
			errs = append(errs, fmt.Errorf("report: tracked gate %q was not measured", name))
			continue
		}
		floor := bound.OpsPerSec * (1 - GateThroughputTolerance)
		if got < floor {
			errs = append(errs, fmt.Errorf("report: gate %q throughput = %.0f ops/s, more than %.0f%% below the recorded %.0f ops/s (floor %.0f)",
				name, got, GateThroughputTolerance*100, bound.OpsPerSec, floor))
		}
	}
	return errors.Join(errs...)
}
