package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"adaptbf/internal/harness"
	"adaptbf/internal/stats"
)

// A GateSpec is a digest-based regression gate: for each policy, the
// interval its p99 RPC latency (µs, merged over every cell the policy
// ran in the gated grid) must fall inside. The tracked intervals live in
// BENCH_matrix.json at the repository root under "regression_gate",
// captured from the deterministic default grid — the simulator is
// bit-reproducible, so any excursion is a real behavioural change, and
// the interval width only buys tolerance against intentional small
// retunings, not noise.
type GateSpec struct {
	// Grid documents the grid the intervals were captured on.
	Grid string `json:"grid,omitempty"`
	// Policies maps a policy name (sim.Policy.String()) to its bounds.
	Policies map[string]GateInterval `json:"policies"`
}

// A GateInterval bounds one policy's merged p99 latency in microseconds.
type GateInterval struct {
	P99USMin float64 `json:"p99_us_min"`
	P99USMax float64 `json:"p99_us_max"`
}

// LoadGate reads a GateSpec from a JSON file carrying a top-level
// "regression_gate" field (BENCH_matrix.json's layout). A file without
// the field is an error: a gate that silently checks nothing would pass
// forever.
func LoadGate(path string) (GateSpec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return GateSpec{}, err
	}
	var wrapper struct {
		RegressionGate *GateSpec `json:"regression_gate"`
	}
	if err := json.Unmarshal(buf, &wrapper); err != nil {
		return GateSpec{}, fmt.Errorf("report: parsing gate file %s: %w", path, err)
	}
	if wrapper.RegressionGate == nil || len(wrapper.RegressionGate.Policies) == 0 {
		return GateSpec{}, fmt.Errorf("report: %s carries no regression_gate.policies section", path)
	}
	return *wrapper.RegressionGate, nil
}

// PolicyP99s merges every non-failed cell's latency digest by policy and
// reports each policy's p99 in microseconds — the quantity CheckGate
// gates on, exported so a re-capture can print the values to track.
// Policies appear in first-appearance (canonical cell) order.
func PolicyP99s(res *harness.MatrixResult) (policies []string, p99us map[string]float64) {
	merged := map[string]*stats.Digest{}
	for _, cr := range res.Cells {
		if cr.Err != nil || cr.LatencyDigest == nil {
			continue
		}
		name := cr.Cell.Policy.String()
		d, ok := merged[name]
		if !ok {
			d = stats.NewDigest()
			merged[name] = d
			policies = append(policies, name)
		}
		d.Merge(cr.LatencyDigest)
	}
	p99us = make(map[string]float64, len(merged))
	for name, d := range merged {
		if d.N() > 0 {
			p99us[name] = us(d.Quantile(99))
		}
	}
	return policies, p99us
}

// CheckGate verifies a merged matrix against the tracked intervals: it
// fails if any gated policy's merged p99 falls outside its interval, or
// if a gated policy did not run at all (a gate that cannot observe its
// policy must fail loudly, not pass vacuously). Policies the run swept
// but the spec does not track are ignored. All violations are joined.
func CheckGate(res *harness.MatrixResult, spec GateSpec) error {
	_, p99s := PolicyP99s(res)
	names := make([]string, 0, len(spec.Policies))
	for name := range spec.Policies {
		names = append(names, name)
	}
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		iv := spec.Policies[name]
		got, ok := p99s[name]
		if !ok {
			errs = append(errs, fmt.Errorf("report: gated policy %q produced no latency samples in this run", name))
			continue
		}
		if got < iv.P99USMin || got > iv.P99USMax {
			errs = append(errs, fmt.Errorf("report: policy %q p99 = %.1fµs outside tracked interval [%.1f, %.1f]µs",
				name, got, iv.P99USMin, iv.P99USMax))
		}
	}
	return errors.Join(errs...)
}
