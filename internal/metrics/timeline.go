// Package metrics collects and renders the measurements the paper reports:
// per-job I/O throughput timelines binned at the observation granularity
// (100 ms in every figure), per-job and aggregate bandwidth summaries,
// AdapTBF-vs-baseline gain/loss percentages (Figures 4b, 6b, 8b), and
// sampled series such as the per-job records and demands of Figure 7.
//
// The recording hot paths are index-based: a caller interns each job name
// once with JobIndex and then records by dense slice index, so per-RPC
// accounting never hashes a string. The string-keyed methods survive as
// the reporting boundary and for callers that do not intern.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// MiB is 2^20 bytes; the paper reports bandwidth in MiB/s.
const MiB = 1 << 20

// A Timeline accumulates completed I/O bytes per job into fixed-width time
// bins. It is the in-memory equivalent of the paper's "observation
// collected at every 100ms" X axes.
type Timeline struct {
	bin     time.Duration
	index   map[string]int
	names   []string
	series  [][]int64
	touched []bool // jobs with at least one recorded sample
	bins    int
}

// NewTimeline returns a timeline with the given bin width.
func NewTimeline(bin time.Duration) *Timeline {
	if bin <= 0 {
		panic("metrics: non-positive bin width")
	}
	return &Timeline{bin: bin, index: make(map[string]int)}
}

// BinWidth reports the bin width.
func (t *Timeline) BinWidth() time.Duration { return t.bin }

// Bins reports the number of bins up to the latest recorded instant.
func (t *Timeline) Bins() int { return t.bins }

// JobIndex interns a job name, returning its dense index for RecordIdx.
// Interning a job does not make it appear in Jobs() or Summarize(); only
// recorded samples do.
func (t *Timeline) JobIndex(job string) int {
	idx, ok := t.index[job]
	if !ok {
		idx = len(t.names)
		t.index[job] = idx
		t.names = append(t.names, job)
		t.series = append(t.series, nil)
		t.touched = append(t.touched, false)
	}
	return idx
}

// Record adds bytes completed by job at the given time (nanoseconds).
func (t *Timeline) Record(job string, at int64, bytes int64) {
	t.RecordIdx(t.JobIndex(job), at, bytes)
}

// RecordIdx adds bytes completed at the given time (nanoseconds) for the
// job interned at idx — the per-RPC path, a bounds check and two adds.
func (t *Timeline) RecordIdx(idx int, at int64, bytes int64) {
	if at < 0 {
		at = 0
	}
	bin := int(at / int64(t.bin))
	s := t.series[idx]
	if bin >= len(s) {
		if bin < cap(s) {
			s = s[:bin+1] // storage beyond len is zeroed (make-backed)
		} else {
			want := 2 * cap(s)
			if want < bin+1 {
				want = bin + 1
			}
			if want < 64 {
				want = 64
			}
			grown := make([]int64, bin+1, want)
			copy(grown, s)
			s = grown
		}
	}
	s[bin] += bytes
	t.series[idx] = s
	t.touched[idx] = true
	if bin+1 > t.bins {
		t.bins = bin + 1
	}
}

// Jobs returns the recorded job names, sorted. Jobs that were interned but
// never recorded do not appear.
func (t *Timeline) Jobs() []string {
	out := make([]string, 0, len(t.names))
	for i, name := range t.names {
		if t.touched[i] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (t *Timeline) seriesOf(job string) []int64 {
	if idx, ok := t.index[job]; ok {
		return t.series[idx]
	}
	return nil
}

// Throughput returns the job's per-bin throughput in MiB/s, padded to
// Bins() entries.
func (t *Timeline) Throughput(job string) []float64 {
	out := make([]float64, t.bins)
	sec := t.bin.Seconds()
	for i, b := range t.seriesOf(job) {
		out[i] = float64(b) / MiB / sec
	}
	return out
}

// Aggregate returns the per-bin aggregate throughput across all jobs in
// MiB/s — the paper's "aggregated I/O throughput" series.
func (t *Timeline) Aggregate() []float64 {
	out := make([]float64, t.bins)
	sec := t.bin.Seconds()
	for _, s := range t.series {
		for i, b := range s {
			out[i] += float64(b) / MiB / sec
		}
	}
	return out
}

// TotalBytes reports the job's total completed bytes.
func (t *Timeline) TotalBytes(job string) int64 {
	var n int64
	for _, b := range t.seriesOf(job) {
		n += b
	}
	return n
}

// GrandTotalBytes reports total completed bytes across all jobs.
func (t *Timeline) GrandTotalBytes() int64 {
	var n int64
	for _, s := range t.series {
		for _, b := range s {
			n += b
		}
	}
	return n
}

// A JobSummary condenses one job's timeline.
type JobSummary struct {
	Job        string
	TotalMiB   float64
	AvgMiBps   float64       // total bytes over the job's active span
	ActiveSpan time.Duration // first to last bin with traffic
}

// A Summary condenses a whole run — the numbers behind the bar charts in
// Figures 4(a), 6(a), and 8(a).
type Summary struct {
	PerJob       map[string]JobSummary
	OverallMiBps float64 // grand total bytes over the makespan
	Makespan     time.Duration
}

// Summarize computes per-job and overall average bandwidths. A job's
// average is taken over its own active span (the paper reports per-job
// achieved bandwidth); the overall average is taken over the makespan.
func (t *Timeline) Summarize() Summary {
	s := Summary{PerJob: make(map[string]JobSummary)}
	lastAny := -1
	for idx, series := range t.series {
		if !t.touched[idx] {
			continue
		}
		first, last := -1, -1
		var total int64
		for i, b := range series {
			if b > 0 {
				if first < 0 {
					first = i
				}
				last = i
				total += b
			}
		}
		js := JobSummary{Job: t.names[idx], TotalMiB: float64(total) / MiB}
		if first >= 0 {
			js.ActiveSpan = time.Duration(last-first+1) * t.bin
			js.AvgMiBps = js.TotalMiB / js.ActiveSpan.Seconds()
			if last > lastAny {
				lastAny = last
			}
		}
		s.PerJob[t.names[idx]] = js
	}
	if lastAny >= 0 {
		s.Makespan = time.Duration(lastAny+1) * t.bin
		s.OverallMiBps = float64(t.GrandTotalBytes()) / MiB / s.Makespan.Seconds()
	}
	return s
}

// GainLoss reports the percentage change of each job's average bandwidth
// in s relative to base, plus an "overall" entry — Figures 4(b), 6(b),
// 8(b). Jobs absent from base are skipped.
func GainLoss(s, base Summary) map[string]float64 {
	out := make(map[string]float64)
	for job, js := range s.PerJob {
		bj, ok := base.PerJob[job]
		if !ok || bj.AvgMiBps == 0 {
			continue
		}
		out[job] = (js.AvgMiBps - bj.AvgMiBps) / bj.AvgMiBps * 100
	}
	if base.OverallMiBps > 0 {
		out["overall"] = (s.OverallMiBps - base.OverallMiBps) / base.OverallMiBps * 100
	}
	return out
}

// A Point is one sample of a named series.
type Point struct {
	T int64   // nanoseconds
	V float64 // value
}

// A SeriesSet holds named sampled series, such as the per-job record and
// demand curves of Figure 7. The read accessors are nil-receiver safe, so
// reporting code can consume a Result whose sampling was disabled without
// guarding every call.
type SeriesSet struct {
	series map[string][]Point
}

// NewSeriesSet returns an empty series set.
func NewSeriesSet() *SeriesSet { return &SeriesSet{series: make(map[string][]Point)} }

// Add appends a sample to the named series.
func (s *SeriesSet) Add(name string, t int64, v float64) {
	s.series[name] = append(s.series[name], Point{T: t, V: v})
}

// Names returns the series names, sorted. A nil SeriesSet has none.
func (s *SeriesSet) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the named series (nil if absent or s is nil).
func (s *SeriesSet) Get(name string) []Point {
	if s == nil {
		return nil
	}
	return s.series[name]
}

// Last returns the final value of the named series, or 0.
func (s *SeriesSet) Last(name string) float64 {
	if s == nil {
		return 0
	}
	ps := s.series[name]
	if len(ps) == 0 {
		return 0
	}
	return ps[len(ps)-1].V
}

// Downsample reduces vals to width buckets by averaging, for rendering.
// It returns vals unchanged when already narrow enough.
func Downsample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	per := float64(len(vals)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(vals) {
			hi = len(vals)
		}
		var sum float64
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Sparkline renders values as a unicode block-character strip of at most
// width cells — the terminal stand-in for the paper's timeline plots.
func Sparkline(vals []float64, width int) string {
	vals = Downsample(vals, width)
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 0 {
		lo = 0 // throughput plots are zero-based
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		if hi == lo {
			out[i] = blocks[0]
			continue
		}
		idx := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		out[i] = blocks[idx]
	}
	return string(out)
}

// FormatMiBps renders a bandwidth for tables.
func FormatMiBps(v float64) string { return fmt.Sprintf("%.1f", v) }
