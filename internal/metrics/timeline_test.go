package metrics

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func ms(n int64) int64 { return n * int64(time.Millisecond) }

func TestRecordBinsCorrectly(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	tl.Record("j", ms(0), MiB)   // bin 0
	tl.Record("j", ms(99), MiB)  // bin 0
	tl.Record("j", ms(100), MiB) // bin 1
	tl.Record("j", ms(250), MiB) // bin 2
	tp := tl.Throughput("j")
	if len(tp) != 3 {
		t.Fatalf("bins = %d, want 3", len(tp))
	}
	// 2 MiB in a 100ms bin = 20 MiB/s.
	if tp[0] != 20 || tp[1] != 10 || tp[2] != 10 {
		t.Fatalf("throughput = %v, want [20 10 10]", tp)
	}
}

func TestAggregateSumsJobs(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	tl.Record("a", ms(50), MiB)
	tl.Record("b", ms(50), 3*MiB)
	agg := tl.Aggregate()
	if agg[0] != 40 {
		t.Fatalf("aggregate = %v, want 40 MiB/s", agg[0])
	}
}

func TestThroughputPadded(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	tl.Record("short", ms(0), MiB)
	tl.Record("long", ms(500), MiB)
	if got := len(tl.Throughput("short")); got != tl.Bins() {
		t.Fatalf("short series len %d != bins %d", got, tl.Bins())
	}
}

func TestTotals(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.Record("a", 0, 10)
	tl.Record("a", ms(1500), 20)
	tl.Record("b", 0, 5)
	if tl.TotalBytes("a") != 30 || tl.GrandTotalBytes() != 35 {
		t.Fatalf("totals: a=%d grand=%d", tl.TotalBytes("a"), tl.GrandTotalBytes())
	}
}

func TestSummarizeActiveSpan(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	// Job active bins 0-9 (1s) writing 100 MiB -> 100 MiB/s.
	for i := int64(0); i < 10; i++ {
		tl.Record("early", ms(i*100), 10*MiB)
	}
	// Job active only bins 20-29, same volume.
	for i := int64(20); i < 30; i++ {
		tl.Record("late", ms(i*100), 10*MiB)
	}
	s := tl.Summarize()
	if got := s.PerJob["early"].AvgMiBps; math.Abs(got-100) > 1e-9 {
		t.Errorf("early avg = %v, want 100 (active-span based)", got)
	}
	if got := s.PerJob["late"].AvgMiBps; math.Abs(got-100) > 1e-9 {
		t.Errorf("late avg = %v, want 100 (active-span based)", got)
	}
	if s.Makespan != 3*time.Second {
		t.Errorf("makespan = %v, want 3s", s.Makespan)
	}
	// Overall: 200 MiB over 3s.
	if got := s.OverallMiBps; math.Abs(got-200.0/3) > 1e-6 {
		t.Errorf("overall = %v, want %v", got, 200.0/3)
	}
}

func TestGainLoss(t *testing.T) {
	mk := func(a, b float64) Summary {
		return Summary{
			PerJob: map[string]JobSummary{
				"a": {AvgMiBps: a},
				"b": {AvgMiBps: b},
			},
			OverallMiBps: a + b,
		}
	}
	gl := GainLoss(mk(150, 50), mk(100, 100))
	if math.Abs(gl["a"]-50) > 1e-9 || math.Abs(gl["b"]+50) > 1e-9 {
		t.Fatalf("gain/loss = %v, want a:+50%% b:-50%%", gl)
	}
	if math.Abs(gl["overall"]-0) > 1e-9 {
		t.Fatalf("overall gain = %v, want 0", gl["overall"])
	}
}

func TestGainLossSkipsUnknownBase(t *testing.T) {
	gl := GainLoss(
		Summary{PerJob: map[string]JobSummary{"new": {AvgMiBps: 10}}},
		Summary{PerJob: map[string]JobSummary{}},
	)
	if _, ok := gl["new"]; ok {
		t.Fatal("gain computed against missing baseline job")
	}
}

func TestSeriesSet(t *testing.T) {
	s := NewSeriesSet()
	s.Add("rec:j1", 0, 1)
	s.Add("rec:j1", ms(100), 2.5)
	s.Add("dem:j1", 0, 7)
	if names := s.Names(); len(names) != 2 || names[0] != "dem:j1" {
		t.Fatalf("names = %v", names)
	}
	if got := s.Last("rec:j1"); got != 2.5 {
		t.Fatalf("last = %v, want 2.5", got)
	}
	if got := s.Last("missing"); got != 0 {
		t.Fatalf("last of missing = %v, want 0", got)
	}
	if pts := s.Get("rec:j1"); len(pts) != 2 || pts[1].T != ms(100) {
		t.Fatalf("points = %v", pts)
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 3, 3, 5, 5, 7, 7}
	out := Downsample(in, 4)
	want := []float64{1, 3, 5, 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("downsample = %v, want %v", out, want)
		}
	}
	if got := Downsample(in, 100); len(got) != len(in) {
		t.Fatal("widening downsample changed length")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8}, 100)
	if utf8len := len([]rune(s)); utf8len != 9 {
		t.Fatalf("sparkline cells = %d, want 9", utf8len)
	}
	if []rune(s)[0] == []rune(s)[8] {
		t.Fatal("sparkline flat for a rising series")
	}
	if got := Sparkline(nil, 10); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	flat := Sparkline([]float64{5, 5, 5}, 10)
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestRenderTableAligns(t *testing.T) {
	var buf bytes.Buffer
	RenderTable(&buf, []string{"job", "MiB/s"}, [][]string{
		{"j1", "10.0"},
		{"longjobname", "7.5"},
	})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[3], "longjobname  ") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	tl.Record("a", 0, MiB)
	tl.Record("b", ms(100), 2*MiB)
	var buf bytes.Buffer
	if err := TimelineCSV(&buf, tl); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "time_s,a,b,aggregate\n") {
		t.Fatalf("csv header wrong: %q", got)
	}
	if !strings.Contains(got, "0.000,10.00,0.00,10.00") {
		t.Fatalf("csv row wrong: %q", got)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeriesSet()
	s.Add("r", ms(100), 1.5)
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.100,r,1.500") {
		t.Fatalf("series csv: %q", buf.String())
	}
}

func TestRenderTimelineSmoke(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	for i := int64(0); i < 50; i++ {
		tl.Record("j1", ms(i*100), MiB*(i%5))
	}
	var buf bytes.Buffer
	RenderTimeline(&buf, "test", tl, 40)
	out := buf.String()
	if !strings.Contains(out, "j1") || !strings.Contains(out, "aggregate") {
		t.Fatalf("render missing rows: %q", out)
	}
}

func TestNewTimelinePanicsOnBadBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTimeline(0) did not panic")
		}
	}()
	NewTimeline(0)
}

func TestNegativeTimeClamped(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.Record("j", -5, 10)
	if tl.TotalBytes("j") != 10 {
		t.Fatal("negative-time record lost")
	}
}

func TestNilSeriesSetAccessorsAreSafe(t *testing.T) {
	var s *SeriesSet
	if s.Names() != nil {
		t.Error("nil SeriesSet.Names() != nil")
	}
	if s.Get("x") != nil {
		t.Error("nil SeriesSet.Get() != nil")
	}
	if s.Last("x") != 0 {
		t.Error("nil SeriesSet.Last() != 0")
	}
}

func TestTimelineIdxPathMatchesStringPath(t *testing.T) {
	a := NewTimeline(100 * time.Millisecond)
	b := NewTimeline(100 * time.Millisecond)
	ja := b.JobIndex("a")
	jb := b.JobIndex("b")
	for i := int64(0); i < 50; i++ {
		at := i * int64(37*time.Millisecond)
		a.Record("a", at, 1000)
		b.RecordIdx(ja, at, 1000)
		if i%3 == 0 {
			a.Record("b", at, 500)
			b.RecordIdx(jb, at, 500)
		}
	}
	if got, want := fmt.Sprint(a.Jobs()), fmt.Sprint(b.Jobs()); got != want {
		t.Fatalf("Jobs %s vs %s", want, got)
	}
	for _, job := range a.Jobs() {
		if got, want := fmt.Sprint(b.Throughput(job)), fmt.Sprint(a.Throughput(job)); got != want {
			t.Fatalf("Throughput(%s) diverges", job)
		}
		if a.TotalBytes(job) != b.TotalBytes(job) {
			t.Fatalf("TotalBytes(%s) diverges", job)
		}
	}
}

func TestTimelineInternedButUnrecordedJobHidden(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.JobIndex("ghost")
	idx := tl.JobIndex("real")
	tl.RecordIdx(idx, 0, 42)
	if got := tl.Jobs(); len(got) != 1 || got[0] != "real" {
		t.Fatalf("Jobs = %v, want [real]", got)
	}
	if _, ok := tl.Summarize().PerJob["ghost"]; ok {
		t.Fatal("unrecorded interned job leaked into Summarize")
	}
}
