package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// RenderTable writes an aligned plain-text table. It is used by the
// benchmark harness to print the same rows the paper's figures plot.
func RenderTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && utf8.RuneCountInString(c) > widths[i] {
				widths[i] = utf8.RuneCountInString(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = c + strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c))
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range rows {
		line(row)
	}
}

// WriteCSV writes header and rows as CSV.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TimelineCSV writes a timeline as CSV: one row per bin with a time column
// (seconds), one column per job, and an aggregate column.
func TimelineCSV(w io.Writer, t *Timeline) error {
	jobs := t.Jobs()
	header := append([]string{"time_s"}, jobs...)
	header = append(header, "aggregate")
	perJob := make([][]float64, len(jobs))
	for i, j := range jobs {
		perJob[i] = t.Throughput(j)
	}
	agg := t.Aggregate()
	rows := make([][]string, t.Bins())
	sec := t.BinWidth().Seconds()
	for b := 0; b < t.Bins(); b++ {
		row := make([]string, 0, len(jobs)+2)
		row = append(row, strconv.FormatFloat(float64(b)*sec, 'f', 3, 64))
		for i := range jobs {
			row = append(row, strconv.FormatFloat(perJob[i][b], 'f', 2, 64))
		}
		row = append(row, strconv.FormatFloat(agg[b], 'f', 2, 64))
		rows[b] = row
	}
	return WriteCSV(w, header, rows)
}

// SeriesCSV writes a series set as CSV: time_s, series, value.
func SeriesCSV(w io.Writer, s *SeriesSet) error {
	rows := [][]string{}
	for _, name := range s.Names() {
		for _, p := range s.Get(name) {
			rows = append(rows, []string{
				strconv.FormatFloat(float64(p.T)/1e9, 'f', 3, 64),
				name,
				strconv.FormatFloat(p.V, 'f', 3, 64),
			})
		}
	}
	return WriteCSV(w, []string{"time_s", "series", "value"}, rows)
}

// RenderTimeline prints one sparkline per job plus the aggregate, each
// labeled with its average bandwidth — a terminal rendition of the paper's
// timeline figures.
func RenderTimeline(w io.Writer, title string, t *Timeline, width int) {
	fmt.Fprintf(w, "%s (%d bins × %v)\n", title, t.Bins(), t.BinWidth())
	sum := t.Summarize()
	for _, job := range t.Jobs() {
		fmt.Fprintf(w, "  %-12s |%s| avg %7s MiB/s\n",
			job, Sparkline(t.Throughput(job), width), FormatMiBps(sum.PerJob[job].AvgMiBps))
	}
	fmt.Fprintf(w, "  %-12s |%s| avg %7s MiB/s\n",
		"aggregate", Sparkline(t.Aggregate(), width), FormatMiBps(sum.OverallMiBps))
}
