package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"adaptbf/internal/stats"
)

func TestLatencyPercentiles(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 100; i++ {
		l.Record("j", time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{50, 51 * time.Millisecond},
		{99, 100 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := l.Percentile("j", c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if got := l.Mean("j"); got != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", got)
	}
	if got := l.Max("j"); got != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", got)
	}
	if got := l.Count("j"); got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
}

func TestLatencyEmptyJob(t *testing.T) {
	var l LatencyRecorder
	if l.Percentile("missing", 50) != 0 || l.Mean("missing") != 0 || l.Max("missing") != 0 {
		t.Fatal("empty job not zero")
	}
	if len(l.Jobs()) != 0 {
		t.Fatal("jobs not empty")
	}
}

func TestLatencyRecordAfterQuery(t *testing.T) {
	var l LatencyRecorder
	l.Record("j", 5*time.Millisecond)
	_ = l.Percentile("j", 50) // sorts
	l.Record("j", 1*time.Millisecond)
	if got := l.Percentile("j", 0); got != time.Millisecond {
		t.Fatalf("min after re-record = %v, want 1ms", got)
	}
}

func TestLatencyJobsSorted(t *testing.T) {
	var l LatencyRecorder
	l.Record("z", 1)
	l.Record("a", 1)
	jobs := l.Jobs()
	if len(jobs) != 2 || jobs[0] != "a" {
		t.Fatalf("jobs = %v", jobs)
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestLatencyMonotoneQuick(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var l LatencyRecorder
		for _, v := range vals {
			l.Record("j", time.Duration(v)*time.Microsecond)
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 5 {
			got := l.Percentile("j", p)
			if got < prev {
				return false
			}
			prev = got
		}
		return l.Percentile("j", 0) <= l.Mean("j") && l.Mean("j") <= l.Max("j")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyIdxPathAndReserve(t *testing.T) {
	var a, b LatencyRecorder
	idx := b.JobIndex("j")
	b.Reserve(idx, 128)
	for i := 1; i <= 100; i++ {
		d := time.Duration(i*37%50) * time.Millisecond
		a.Record("j", d)
		b.RecordIdx(idx, d)
	}
	if a.Count("j") != b.Count("j") {
		t.Fatal("counts diverge")
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if a.Percentile("j", p) != b.Percentile("j", p) {
			t.Fatalf("p%v diverges", p)
		}
	}
	if a.Mean("j") != b.Mean("j") || a.Max("j") != b.Max("j") {
		t.Fatal("mean/max diverge")
	}
	// An interned-but-empty job stays hidden.
	b.JobIndex("ghost")
	if got := b.Jobs(); len(got) != 1 || got[0] != "j" {
		t.Fatalf("Jobs = %v", got)
	}
}

// TestFeedDigest: the digest bridge must carry every sample of every job
// (and only the named job's for the per-job variant), preserving count,
// extremes, and quantile-bucket agreement.
func TestFeedDigest(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 50; i++ {
		l.Record("a", time.Duration(i)*time.Millisecond)
		l.Record("b", time.Duration(i)*time.Microsecond)
	}
	d := stats.NewDigest()
	l.FeedDigest(d)
	if d.N() != 100 {
		t.Fatalf("digest carries %d samples, want 100", d.N())
	}
	if d.Min() != time.Microsecond || d.Max() != 50*time.Millisecond {
		t.Fatalf("digest extremes %v/%v", d.Min(), d.Max())
	}
	dj := stats.NewDigest()
	l.FeedDigestJob(dj, "b")
	if dj.N() != 50 || dj.Max() != 50*time.Microsecond {
		t.Fatalf("per-job digest wrong: n=%d max=%v", dj.N(), dj.Max())
	}
	if est, exact := dj.Quantile(50), l.Percentile("b", 50); est < exact {
		t.Fatalf("digest p50 %v undershoots exact %v", est, exact)
	}
	ghost := stats.NewDigest()
	l.FeedDigestJob(ghost, "missing")
	if ghost.N() != 0 {
		t.Fatal("unknown job fed samples")
	}
}
