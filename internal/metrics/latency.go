package metrics

import (
	"sort"
	"time"
)

// A LatencyRecorder accumulates per-job request latencies and answers
// percentile queries. §IV-E's starvation claim is fundamentally a latency
// claim — bursts queue behind a hog's backlog — so the experiments report
// it directly. The zero LatencyRecorder is ready to use.
type LatencyRecorder struct {
	byJob  map[string][]time.Duration
	sorted map[string]bool
}

// Record adds one request latency for the job.
func (l *LatencyRecorder) Record(job string, d time.Duration) {
	if l.byJob == nil {
		l.byJob = make(map[string][]time.Duration)
		l.sorted = make(map[string]bool)
	}
	l.byJob[job] = append(l.byJob[job], d)
	l.sorted[job] = false
}

// Jobs returns the recorded job names, sorted.
func (l *LatencyRecorder) Jobs() []string {
	out := make([]string, 0, len(l.byJob))
	for j := range l.byJob {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// Count reports the number of samples for the job.
func (l *LatencyRecorder) Count(job string) int { return len(l.byJob[job]) }

func (l *LatencyRecorder) ensureSorted(job string) []time.Duration {
	s := l.byJob[job]
	if len(s) > 0 && !l.sorted[job] {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		l.sorted[job] = true
	}
	return s
}

// Percentile reports the p-th percentile latency (p in [0,100]) for the
// job using nearest-rank, or 0 with no samples.
func (l *LatencyRecorder) Percentile(job string, p float64) time.Duration {
	s := l.ensureSorted(job)
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p / 100 * float64(len(s)))
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Mean reports the mean latency for the job, or 0 with no samples.
func (l *LatencyRecorder) Mean(job string) time.Duration {
	s := l.byJob[job]
	if len(s) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return sum / time.Duration(len(s))
}

// Max reports the maximum latency for the job.
func (l *LatencyRecorder) Max(job string) time.Duration {
	s := l.ensureSorted(job)
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}
