package metrics

import (
	"sort"
	"time"

	"adaptbf/internal/stats"
)

// A LatencyRecorder accumulates per-job request latencies and answers
// percentile queries. §IV-E's starvation claim is fundamentally a latency
// claim — bursts queue behind a hog's backlog — so the experiments report
// it directly. Samples live in dense slices indexed by an interned job
// index (see JobIndex/RecordIdx), so the per-RPC path is a slice append.
// The zero LatencyRecorder is ready to use.
type LatencyRecorder struct {
	index  map[string]int
	names  []string
	byJob  [][]time.Duration
	sorted []bool
}

// JobIndex interns a job name, returning its dense index for RecordIdx.
func (l *LatencyRecorder) JobIndex(job string) int {
	if l.index == nil {
		l.index = make(map[string]int)
	}
	idx, ok := l.index[job]
	if !ok {
		idx = len(l.names)
		l.index[job] = idx
		l.names = append(l.names, job)
		l.byJob = append(l.byJob, nil)
		l.sorted = append(l.sorted, false)
	}
	return idx
}

// Reserve pre-allocates capacity for n samples for the job interned at
// idx, so a caller that knows its total request count up front (the
// simulator: bounded workloads declare their RPC totals) pays one
// allocation instead of a doubling series.
func (l *LatencyRecorder) Reserve(idx, n int) {
	if n > cap(l.byJob[idx]) {
		s := make([]time.Duration, len(l.byJob[idx]), n)
		copy(s, l.byJob[idx])
		l.byJob[idx] = s
	}
}

// Record adds one request latency for the job.
func (l *LatencyRecorder) Record(job string, d time.Duration) {
	l.RecordIdx(l.JobIndex(job), d)
}

// RecordIdx adds one request latency for the job interned at idx — the
// per-RPC path, an amortized slice append.
func (l *LatencyRecorder) RecordIdx(idx int, d time.Duration) {
	l.byJob[idx] = append(l.byJob[idx], d)
	l.sorted[idx] = false
}

// Jobs returns the recorded job names, sorted. Jobs interned but never
// recorded do not appear.
func (l *LatencyRecorder) Jobs() []string {
	out := make([]string, 0, len(l.names))
	for i, name := range l.names {
		if len(l.byJob[i]) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (l *LatencyRecorder) samplesOf(job string) []time.Duration {
	if idx, ok := l.index[job]; ok {
		return l.byJob[idx]
	}
	return nil
}

// Count reports the number of samples for the job.
func (l *LatencyRecorder) Count(job string) int { return len(l.samplesOf(job)) }

func (l *LatencyRecorder) ensureSorted(job string) []time.Duration {
	idx, ok := l.index[job]
	if !ok {
		return nil
	}
	s := l.byJob[idx]
	if len(s) > 0 && !l.sorted[idx] {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		l.sorted[idx] = true
	}
	return s
}

// Percentile reports the p-th percentile latency (p in [0,100]) for the
// job using the nearest-rank convention, or 0 with no samples.
//
// Nearest-rank here means the returned value is always one of the
// recorded samples: the element at zero-based rank ⌊p/100·n⌋ of the
// sorted sample slice (clamped to the last element). p=50 over four
// samples returns the third-smallest, not an interpolated midpoint; p=0
// is the minimum and p=100 the maximum. stats.Digest.Quantile follows
// the same convention, which is what lets its bucketized estimates be
// tested to land in the exact percentile's bucket.
func (l *LatencyRecorder) Percentile(job string, p float64) time.Duration {
	s := l.ensureSorted(job)
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p / 100 * float64(len(s)))
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Mean reports the mean latency for the job, or 0 with no samples.
func (l *LatencyRecorder) Mean(job string) time.Duration {
	s := l.samplesOf(job)
	if len(s) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return sum / time.Duration(len(s))
}

// Max reports the maximum latency for the job.
func (l *LatencyRecorder) Max(job string) time.Duration {
	s := l.ensureSorted(job)
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// FeedDigest folds every recorded sample — all jobs — into d. This is
// the bridge between the raw per-RPC recorder and the mergeable
// fixed-size digests the matrix analytics keep per cell: the harness
// calls it once per finished cell, after which the raw samples can be
// dropped while quantile queries survive the merge.
func (l *LatencyRecorder) FeedDigest(d *stats.Digest) {
	for _, samples := range l.byJob {
		for _, v := range samples {
			d.Add(v)
		}
	}
}

// FeedDigestJob folds only the named job's samples into d.
func (l *LatencyRecorder) FeedDigestJob(d *stats.Digest, job string) {
	for _, v := range l.samplesOf(job) {
		d.Add(v)
	}
}
