package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Fault describes injected network misbehaviour for one side of a
// connection. Every message written through a FaultedConn pays the
// profile's delays, so an RPC round-trip pays one traversal per wrapped
// side. The zero Fault injects nothing.
type Fault struct {
	// Latency is a fixed delay added to every message sent.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) delay on top, drawn from the
	// seed-keyed RNG — deterministic given the seed and message order.
	Jitter time.Duration
	// Loss is the per-message probability in [0, 1] that a packet of the
	// message is "lost". The transport is a reliable stream, so loss
	// manifests the way TCP surfaces it: a retransmission timeout added
	// to the message's delay (lossRTO, doubling on consecutive losses of
	// the same message), not corruption of the stream.
	Loss float64
	// Bandwidth caps the sender at this many bytes per second (0 =
	// unlimited): each message is additionally delayed by size/Bandwidth.
	Bandwidth int64
}

// lossRTO is the modeled TCP retransmission timeout one lost packet
// costs; consecutive losses of the same message double it, like a real
// retransmit backoff.
const lossRTO = 50 * time.Millisecond

// maxLossRetransmits bounds the consecutive-loss loop so Loss=1 (a
// blackholed link) produces a large finite delay — calls then fail at
// their deadline, which is the behaviour under test — instead of an
// unbounded stall.
const maxLossRetransmits = 6

// IsZero reports whether the profile injects nothing.
func (f Fault) IsZero() bool {
	return f.Latency == 0 && f.Jitter == 0 && f.Loss == 0 && f.Bandwidth == 0
}

// Validate rejects profiles outside their domains.
func (f Fault) Validate() error {
	if f.Latency < 0 || f.Jitter < 0 || f.Bandwidth < 0 {
		return fmt.Errorf("transport: negative fault parameter: %+v", f)
	}
	if f.Loss < 0 || f.Loss > 1 {
		return fmt.Errorf("transport: loss %v outside [0, 1]", f.Loss)
	}
	return nil
}

func (f Fault) String() string {
	if f.IsZero() {
		return "none"
	}
	var parts []string
	if f.Latency > 0 {
		parts = append(parts, "latency="+f.Latency.String())
	}
	if f.Jitter > 0 {
		parts = append(parts, "jitter="+f.Jitter.String())
	}
	if f.Loss > 0 {
		parts = append(parts, "loss="+strconv.FormatFloat(f.Loss, 'g', -1, 64))
	}
	if f.Bandwidth > 0 {
		parts = append(parts, "bw="+strconv.FormatInt(f.Bandwidth, 10))
	}
	return strings.Join(parts, ",")
}

// ParseFault parses a comma-separated fault profile:
//
//	latency=2ms,jitter=1ms,loss=0.1,bw=64MiB
//
// latency/jitter take Go durations, loss a probability in [0, 1], bw a
// bytes-per-second rate with an optional KiB/MiB/GiB suffix. The empty
// string is the zero profile.
func ParseFault(s string) (Fault, error) {
	var f Fault
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Fault{}, fmt.Errorf("transport: bad fault field %q (want key=value)", field)
		}
		if err := f.set(key, val); err != nil {
			return Fault{}, err
		}
	}
	return f, f.Validate()
}

// set applies one key=value fault field; unknown keys are errors so a
// typo cannot silently run a clean network.
func (f *Fault) set(key, val string) error {
	switch key {
	case "latency", "jitter":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("transport: bad fault %s %q: %w", key, val, err)
		}
		if key == "latency" {
			f.Latency = d
		} else {
			f.Jitter = d
		}
	case "loss":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("transport: bad fault loss %q: %w", val, err)
		}
		f.Loss = p
	case "bw", "bandwidth":
		n, err := parseByteRate(val)
		if err != nil {
			return err
		}
		f.Bandwidth = n
	default:
		return fmt.Errorf("transport: unknown fault key %q (known: latency, jitter, loss, bw)", key)
	}
	return nil
}

func parseByteRate(val string) (int64, error) {
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}} {
		if strings.HasSuffix(val, suf.s) {
			val, mult = strings.TrimSuffix(val, suf.s), suf.m
			break
		}
	}
	n, err := strconv.ParseFloat(val, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("transport: bad fault bandwidth %q", val)
	}
	return int64(n * float64(mult)), nil
}

// faultRNG is a splitmix64 stream: deterministic given its seed, so a
// fault profile keyed by (cell seed, connection index) injects the same
// delay sequence every run.
type faultRNG struct{ s uint64 }

func (r *faultRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform sample in [0, 1).
func (r *faultRNG) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// A faultedConn delays every Write by the profile's injected latency,
// jitter, modeled retransmissions, and bandwidth debt. Reads pass
// through untouched — wrap the other side too for delays in both
// directions. Close is idempotent and interrupts no sleep: a message
// already "on the wire" completes its delay, exactly like a real link.
type faultedConn struct {
	net.Conn
	f   Fault
	mu  sync.Mutex
	rng faultRNG
}

// FaultedConn wraps conn so every message written through it pays the
// fault profile's delays, keyed by a deterministic seed. It can wrap
// either side of a connection: a client's dialed conn (requests pay),
// a server's accepted conn (replies pay), or both. A zero profile
// returns conn unwrapped.
func FaultedConn(conn net.Conn, f Fault, seed uint64) net.Conn {
	if f.IsZero() {
		return conn
	}
	return &faultedConn{Conn: conn, f: f, rng: faultRNG{s: seed}}
}

func (c *faultedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	delay := c.f.Latency
	if c.f.Jitter > 0 {
		delay += time.Duration(c.rng.next() % uint64(c.f.Jitter))
	}
	if c.f.Loss > 0 {
		rto := lossRTO
		for i := 0; i < maxLossRetransmits && c.rng.float64() < c.f.Loss; i++ {
			delay += rto
			rto *= 2
		}
	}
	if c.f.Bandwidth > 0 {
		delay += time.Duration(int64(len(p)) * int64(time.Second) / c.f.Bandwidth)
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.Conn.Write(p)
}

// A Redialer is a Caller that (re)connects on demand: the first call
// dials, a poisoned connection (server crash, network cut) is dropped
// and the next call dials again, and each call retries transport-level
// failures with bounded exponential backoff. Retrying means at-least-once
// delivery — use it for idempotent calls (storage RPCs in this model are
// accounting events; control-plane walks tolerate replays by contract).
// Server-reported errors (*RemoteError) are returned without retry: the
// request arrived, the server answered, retrying cannot help.
type Redialer struct {
	Network, Addr string

	// Dial overrides the connection factory (default net.Dial with
	// Network/Addr) — how tests and fault injectors interpose.
	Dial func() (net.Conn, error)

	// Attempts is the total tries per call (default 3). 1 disables
	// retry but keeps reconnect-on-dial.
	Attempts int
	// Backoff is the initial inter-attempt sleep (default 25ms),
	// doubling per attempt.
	Backoff time.Duration

	// Lifetime counters (atomic): dials made and per-call retry attempts
	// beyond the first. Read them with Stats; the remote matrix backend
	// folds them into the cell's transport_redials/retries metrics.
	dials   atomic.Int64
	retries atomic.Int64

	mu     sync.Mutex
	cur    *Client
	closed bool
}

// RedialerStats is a snapshot of a Redialer's lifetime transport
// resilience counters.
type RedialerStats struct {
	// Dials counts connections established, including the first; values
	// above 1 mean the connection was poisoned and re-established.
	Dials int64
	// Retries counts call attempts beyond each call's first — every unit
	// is one transport-level failure the redialer absorbed.
	Retries int64
}

// Stats snapshots the redialer's dial/retry counters.
func (r *Redialer) Stats() RedialerStats {
	return RedialerStats{Dials: r.dials.Load(), Retries: r.retries.Load()}
}

// client returns a healthy client, dialing if the previous connection
// was poisoned or never existed.
func (r *Redialer) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.cur != nil && r.cur.Err() == nil {
		return r.cur, nil
	}
	if r.cur != nil {
		r.cur.Close()
		r.cur = nil
	}
	dial := r.Dial
	if dial == nil {
		dial = func() (net.Conn, error) { return net.Dial(r.Network, r.Addr) }
	}
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	r.dials.Add(1)
	r.cur = NewClient(conn)
	return r.cur, nil
}

// CallCtx issues the request, redialing and retrying transport-level
// failures until ctx ends or the attempt budget is spent. The last
// error is returned with its identity intact.
func (r *Redialer) CallCtx(ctx context.Context, req Request) (Reply, error) {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := r.Backoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	var rep Reply
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			r.retries.Add(1)
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		var c *Client
		if c, err = r.client(); err == nil {
			if rep, err = c.CallCtx(ctx, req); err == nil {
				return rep, nil
			}
			var remote *RemoteError
			if errors.As(err, &remote) {
				return rep, err // the server answered; retrying cannot help
			}
			var rejected *RejectedError
			if errors.As(err, &rejected) {
				// Admission control declined the request — a definitive
				// answer from a healthy server. Retrying is exactly the
				// load it is shedding.
				return rep, err
			}
		}
		if ctx.Err() != nil {
			return rep, err
		}
	}
	return rep, err
}

// Call is CallCtx capped at DefaultCallTimeout.
func (r *Redialer) Call(req Request) (Reply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultCallTimeout)
	defer cancel()
	return r.CallCtx(ctx, req)
}

// Close poisons the redialer: the current connection is torn down and
// future calls fail with ErrClosed.
func (r *Redialer) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.cur != nil {
		err := r.cur.Close()
		r.cur = nil
		return err
	}
	return nil
}
