package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// muteHandler accepts every request and never replies — the stalled
// server that used to hang callers forever.
var muteHandler = HandlerFunc(func(req Request, reply func(Reply)) {})

// TestMuteHandlerCallTimesOut: the bare Call must fail at
// DefaultCallTimeout against a server that accepts but never replies —
// the regression test for the unbounded-Call hang.
func TestMuteHandlerCallTimesOut(t *testing.T) {
	old := DefaultCallTimeout
	DefaultCallTimeout = 50 * time.Millisecond
	defer func() { DefaultCallTimeout = old }()

	c := Pipe(muteHandler)
	defer c.Close()
	start := time.Now()
	_, err := c.Call(Request{JobID: "j", Bytes: 1})
	if err == nil {
		t.Fatal("Call against a mute server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded identity", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Call took %v to fail; the default cap did not bite", elapsed)
	}
}

func TestCallCtxDeadline(t *testing.T) {
	c := Pipe(muteHandler)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.CallCtx(ctx, Request{JobID: "j"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The client survives a timed-out call: a healthy later call works.
	c2 := Pipe(echoHandler)
	defer c2.Close()
	if _, err := c2.Call(Request{JobID: "j", Bytes: 1}); err != nil {
		t.Fatalf("healthy call after deadline test: %v", err)
	}
}

func TestCallCtxCancel(t *testing.T) {
	c := Pipe(muteHandler)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := c.CallCtx(ctx, Request{JobID: "j"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestErrClosedIdentity: the sentinel must survive the failure path —
// errors.Is(err, ErrClosed) on calls in flight at Close and on calls
// issued after it.
func TestErrClosedIdentity(t *testing.T) {
	c := Pipe(muteHandler)
	errc := make(chan error, 1)
	go func() {
		_, err := c.CallCtx(context.Background(), Request{JobID: "j"})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the call get in flight
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight call err = %v, want ErrClosed identity", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call not failed by Close")
	}
	if _, _, err := c.Do(Request{JobID: "j"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close err = %v, want ErrClosed identity", err)
	}
	if _, err := c.CallCtx(context.Background(), Request{JobID: "j"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("CallCtx after Close err = %v, want ErrClosed identity", err)
	}
}

func TestRemoteErrorType(t *testing.T) {
	c := Pipe(HandlerFunc(func(req Request, reply func(Reply)) {
		reply(Reply{Err: "quota exceeded"})
	}))
	defer c.Close()
	_, err := c.Call(Request{JobID: "j"})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "quota exceeded" {
		t.Fatalf("err = %#v, want *RemoteError{quota exceeded}", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatal("server error claims ErrClosed identity")
	}
}

// writeFailConn fails every Write — the half-dead connection whose
// write side died while reads still work.
type writeFailConn struct {
	net.Conn
	fails atomic.Int64
}

func (c *writeFailConn) Write(p []byte) (int, error) {
	c.fails.Add(1)
	return 0, errors.New("write side dead")
}

// TestPoisonOnWriteFailure: a server whose reply write fails must close
// the connection so its read loop exits and the peer's calls fail fast,
// instead of silently "serving" on.
func TestPoisonOnWriteFailure(t *testing.T) {
	cs, ss := net.Pipe()
	wf := &writeFailConn{Conn: ss}
	served := make(chan error, 1)
	go func() { served <- ServeConn(wf, echoHandler) }()

	c := NewClient(cs)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.CallCtx(ctx, Request{JobID: "j", Bytes: 1}); err == nil {
		t.Fatal("call succeeded over a connection whose write side is dead")
	} else if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("call only failed at its deadline; the server did not poison the conn")
	}
	select {
	case <-served:
		// read loop exited — the connection was poisoned
	case <-time.After(2 * time.Second):
		t.Fatal("server read loop still running after write failure")
	}
	if wf.fails.Load() == 0 {
		t.Fatal("test exercised nothing: no write was attempted")
	}
}

// TestMidCallConnDrop: the far side drops the TCP connection while a
// call is in flight; the call must fail promptly with a transport
// error, not hang and not report success.
func TestMidCallConnDrop(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Accept the request bytes, then drop the connection mid-call.
		buf := make([]byte, 1)
		conn.Read(buf)
		time.Sleep(10 * time.Millisecond)
		conn.Close()
	}()

	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.CallCtx(ctx, Request{JobID: "j", Bytes: 1}); err == nil {
		t.Fatal("call succeeded over a dropped connection")
	} else if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("call only failed at its deadline; the drop was not detected")
	}
}

// TestServerCrashInFlight: many calls in flight when the server process
// "crashes" (its conns and listener close). Every call must complete —
// with an error — and none may hang.
func TestServerCrashInFlight(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns struct {
		sync.Mutex
		list []net.Conn
	}
	block := make(chan struct{})
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conns.Lock()
			conns.list = append(conns.list, conn)
			conns.Unlock()
			go ServeConn(conn, HandlerFunc(func(req Request, reply func(Reply)) {
				<-block // hold every request until the "crash"
				reply(Reply{Bytes: req.Bytes})
			}))
		}
	}()

	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const inflight = 16
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			_, err := c.CallCtx(context.Background(), Request{JobID: "j", Bytes: int64(i)})
			errs <- err
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the calls get in flight

	// Crash: listener and every accepted conn die at once.
	l.Close()
	conns.Lock()
	for _, conn := range conns.list {
		conn.Close()
	}
	conns.Unlock()

	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("call reported success across a server crash")
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d of %d still hung after server crash", i+1, inflight)
		}
	}
	close(block)
}

// TestDuplicateReplyDropped: a buggy or replaying server sends two
// replies for one seq. The first wins; the duplicate is dropped; the
// client stays usable.
func TestDuplicateReplyDropped(t *testing.T) {
	c := Pipe(HandlerFunc(func(req Request, reply func(Reply)) {
		reply(Reply{Bytes: req.Bytes})
		reply(Reply{Bytes: -1}) // duplicate for the same seq
	}))
	defer c.Close()
	for i := 0; i < 10; i++ {
		rep, err := c.Call(Request{JobID: "j", Bytes: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bytes != int64(i+1) {
			t.Fatalf("call %d got duplicate's payload: %d", i, rep.Bytes)
		}
	}
}

// TestDoEncodeFailureRacesFail: sends blocked mid-encode race Close's
// fail() sweep. Every issued call must resolve exactly once — ownership
// of each pending slot belongs to whoever takes it.
func TestDoEncodeFailureRacesFail(t *testing.T) {
	cs, _ := net.Pipe() // nobody reads the server side: writes block
	c := NewClient(cs)
	const callers = 8
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				ch, _, err := c.Do(Request{JobID: "j", Bytes: 1})
				if err != nil {
					return // send failed cleanly
				}
				select {
				case <-ch:
				case <-time.After(5 * time.Second):
					t.Error("issued call never resolved")
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	c.Close()
	wg.Wait()
}

func TestParseFault(t *testing.T) {
	f, err := ParseFault("latency=2ms,jitter=1ms,loss=0.1,bw=64MiB")
	if err != nil {
		t.Fatal(err)
	}
	want := Fault{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Loss: 0.1, Bandwidth: 64 << 20}
	if f != want {
		t.Fatalf("parsed %+v, want %+v", f, want)
	}
	if f2, err := ParseFault(f.String()); err != nil || f2 != f {
		t.Fatalf("String round-trip: %+v, %v", f2, err)
	}
	if f, err := ParseFault(""); err != nil || !f.IsZero() {
		t.Fatalf("empty profile: %+v, %v", f, err)
	}
	for _, bad := range []string{"latency", "speed=1ms", "loss=1.5", "latency=-1ms", "bw=fast"} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted", bad)
		}
	}
}

// TestFaultLatencyDelays: a 20ms server-side latency profile makes
// every round trip pay at least that.
func TestFaultLatencyDelays(t *testing.T) {
	c := PipeFault(echoHandler, Fault{Latency: 20 * time.Millisecond}, 1)
	defer c.Close()
	start := time.Now()
	if _, err := c.Call(Request{JobID: "j", Bytes: 1}); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 20*time.Millisecond {
		t.Fatalf("RTT %v under a 20ms latency fault", rtt)
	}
}

// TestFaultBlackholeFailsAtDeadline: loss=1 models a link retransmitting
// into the void. The call must fail at its deadline — bounded, no hang.
func TestFaultBlackholeFailsAtDeadline(t *testing.T) {
	c := PipeFault(echoHandler, Fault{Loss: 1}, 7)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.CallCtx(ctx, Request{JobID: "j", Bytes: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call took %v; the deadline did not bound it", elapsed)
	}
}

// TestFaultDeterministicJitter: the same seed produces the same delay
// sequence — the property the cell-seeded fault axis depends on.
func TestFaultDeterministicJitter(t *testing.T) {
	sequence := func(seed uint64) []uint64 {
		r := faultRNG{s: seed}
		out := make([]uint64, 8)
		for i := range out {
			out[i] = r.next()
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if c := sequence(43); a[0] == c[0] {
		t.Fatal("different seeds produced identical first draws")
	}
}

// TestRedialerReconnects: the server's conn dies between calls; the
// redialer detects the poisoned client and dials fresh within one
// call's retry budget.
func TestRedialerReconnects(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var first atomic.Bool
	first.Store(true)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if first.CompareAndSwap(true, false) {
				// First connection: serve one call, then die.
				go func() {
					srv := HandlerFunc(func(req Request, reply func(Reply)) {
						reply(Reply{Bytes: req.Bytes})
						go func() {
							time.Sleep(5 * time.Millisecond)
							conn.Close()
						}()
					})
					ServeConn(conn, srv)
				}()
				continue
			}
			go ServeConn(conn, echoHandler)
		}
	}()

	r := &Redialer{Network: "tcp", Addr: l.Addr().String(), Backoff: 5 * time.Millisecond}
	defer r.Close()
	if _, err := r.Call(Request{JobID: "j", Bytes: 1}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // first conn is now dead
	rep, err := r.Call(Request{JobID: "j", Bytes: 2})
	if err != nil {
		t.Fatalf("call after server conn death: %v", err)
	}
	if rep.Bytes != 2 {
		t.Fatalf("reply bytes = %d, want 2", rep.Bytes)
	}
}

func TestRedialerClosed(t *testing.T) {
	r := &Redialer{Network: "tcp", Addr: "127.0.0.1:1"}
	r.Close()
	if _, err := r.Call(Request{JobID: "j"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestRedialerNoRetryOnRemoteError: a server-reported error means the
// request arrived — retrying is wrong and the attempt count proves it
// did not happen.
func TestRedialerNoRetryOnRemoteError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var served atomic.Int64
	go Serve(l, HandlerFunc(func(req Request, reply func(Reply)) {
		served.Add(1)
		reply(Reply{Err: "denied"})
	}))
	r := &Redialer{Network: "tcp", Addr: l.Addr().String(), Attempts: 3}
	defer r.Close()
	_, err = r.Call(Request{JobID: "j"})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if n := served.Load(); n != 1 {
		t.Fatalf("server saw %d requests; a remote error must not be retried", n)
	}
}
