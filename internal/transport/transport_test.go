package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoHandler replies immediately with the request's byte count.
var echoHandler = HandlerFunc(func(req Request, reply func(Reply)) {
	reply(Reply{Bytes: req.Bytes})
})

func TestCallOverPipe(t *testing.T) {
	c := Pipe(echoHandler)
	defer c.Close()
	rep, err := c.Call(Request{JobID: "dd.n1", Bytes: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != 42 {
		t.Fatalf("reply bytes = %d, want 42", rep.Bytes)
	}
}

func TestConcurrentCalls(t *testing.T) {
	var served atomic.Int64
	c := Pipe(HandlerFunc(func(req Request, reply func(Reply)) {
		served.Add(1)
		go reply(Reply{Bytes: req.Bytes}) // reply from another goroutine
	}))
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rep, err := c.Call(Request{JobID: "j", Bytes: int64(g*100 + i)})
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Bytes != int64(g*100+i) {
					t.Errorf("reply mismatch: %d", rep.Bytes)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if served.Load() != 16*50 {
		t.Fatalf("served %d, want %d", served.Load(), 16*50)
	}
}

func TestAsyncDoPreservesCorrelation(t *testing.T) {
	// Replies arrive out of order; each channel must still get its own.
	var mu sync.Mutex
	var held []func(Reply)
	c := Pipe(HandlerFunc(func(req Request, reply func(Reply)) {
		mu.Lock()
		defer mu.Unlock()
		held = append(held, func(r Reply) { reply(Reply{Bytes: req.Bytes}) })
		if len(held) == 3 {
			for i := len(held) - 1; i >= 0; i-- { // reverse order
				held[i](Reply{})
			}
			held = nil
		}
	}))
	defer c.Close()
	type out struct {
		ch  <-chan Reply
		val int64
	}
	var outs []out
	for i := int64(1); i <= 3; i++ {
		ch, _, err := c.Do(Request{JobID: "j", Bytes: i * 10})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out{ch, i * 10})
	}
	for _, o := range outs {
		rep := <-o.ch
		if rep.Bytes != o.val {
			t.Fatalf("correlation broken: got %d want %d", rep.Bytes, o.val)
		}
	}
}

func TestTCPLoopback(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, echoHandler)

	c, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		rep, err := c.Call(Request{JobID: "tcp.n1", Bytes: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bytes != int64(i) {
			t.Fatalf("bytes = %d, want %d", rep.Bytes, i)
		}
	}
}

func TestMultipleClientsOneServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, echoHandler)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 25; j++ {
				if _, err := c.Call(Request{JobID: "j", Bytes: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCloseFailsOutstanding(t *testing.T) {
	block := make(chan struct{})
	c := Pipe(HandlerFunc(func(req Request, reply func(Reply)) {
		<-block // never replies during the test
	}))
	ch, _, err := c.Do(Request{JobID: "j"})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case rep := <-ch:
		if rep.Err == "" {
			t.Fatal("outstanding call succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("outstanding call not failed after close")
	}
	if _, _, err := c.Do(Request{JobID: "j"}); err == nil {
		t.Fatal("Do on closed client accepted")
	}
	close(block)
}

func TestServerSurvivesClientDisconnect(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, echoHandler)
	// First client connects and vanishes.
	c1, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c1.Call(Request{JobID: "a", Bytes: 1})
	c1.Close()
	// Second client still works.
	c2, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Call(Request{JobID: "b", Bytes: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerErrPropagates(t *testing.T) {
	c := Pipe(HandlerFunc(func(req Request, reply func(Reply)) {
		reply(Reply{Err: "quota exceeded"})
	}))
	defer c.Close()
	_, err := c.Call(Request{JobID: "j"})
	if err == nil || err.Error() != "quota exceeded" {
		t.Fatalf("err = %v, want quota exceeded", err)
	}
}

// TestPayloadRoundTrip: the opaque control-plane payload survives the
// wire in both directions — the contract coordination services (the
// live GIFT coordinator) build on.
func TestPayloadRoundTrip(t *testing.T) {
	echo := HandlerFunc(func(req Request, reply func(Reply)) {
		out := append([]byte("re:"), req.Payload...)
		reply(Reply{Payload: out})
	})
	c := Pipe(echo)
	defer c.Close()
	rep, err := c.Call(Request{Op: 0xF0, Payload: []byte("walk-1")})
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Payload) != "re:walk-1" {
		t.Fatalf("payload round-tripped as %q", rep.Payload)
	}
	// Storage-shaped requests keep working with a nil payload.
	rep, err = c.Call(Request{JobID: "dd.n1", Bytes: 4096, Payload: nil})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Payload == nil || string(rep.Payload) != "re:" {
		t.Fatalf("nil-payload request replied %q", rep.Payload)
	}
}
