// Package transport provides the wire protocol for the real-time cluster
// mode: a minimal asynchronous RPC layer carrying storage requests from
// client processes to object storage servers, framed with encoding/gob
// over any net.Conn (TCP for multi-process runs, net.Pipe in tests).
//
// The protocol is deliberately Lustre-shaped: a request carries the JobID
// the server classifies on, an opcode, a payload size, and a stream
// identifier; the reply carries only the sequence number and outcome —
// payload movement is represented by the server's service time, not by
// shipping gigabytes through the test harness.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// A Request is one RPC from a client process to a storage server.
type Request struct {
	Seq    uint64 // client-assigned; echoed in the reply
	JobID  string // %e.%H job identifier, the classification key
	Op     uint8  // tbf.Opcode value
	Bytes  int64  // payload size the server should account and "transfer"
	Stream int    // file/stream identifier for the device model

	// Payload carries an opaque control-plane message for coordination
	// services that share this transport (e.g. the live GIFT coordinator's
	// per-epoch walk). Storage RPCs leave it nil — data movement stays
	// represented by service time, never by shipping bytes.
	Payload []byte
}

// A Reply reports the outcome of one Request.
type Reply struct {
	Seq   uint64
	Bytes int64  // bytes transferred
	Err   string // empty on success

	// Payload is the control-plane response counterpart of
	// Request.Payload (nil on storage RPCs).
	Payload []byte
}

// envelope is the single wire message type, so one gob stream carries both
// directions' traffic uniformly.
type envelope struct {
	Req *Request
	Rep *Reply
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// A Client issues asynchronous requests over one connection. It is safe
// for concurrent use: many goroutines may Do at once, one internal loop
// dispatches replies.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	encM sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan Reply
	seq     uint64
	err     error
	closed  bool
}

// NewClient wraps an established connection. The caller owns nothing
// afterwards; Close tears the connection down.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan Reply),
	}
	go c.recvLoop()
	return c
}

// Dial connects to a storage server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// recvLoop dispatches replies to their waiting channels until the
// connection dies, then fails all outstanding calls.
func (c *Client) recvLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			c.fail(err)
			return
		}
		if env.Rep == nil {
			continue // ignore stray traffic
		}
		c.mu.Lock()
		ch, ok := c.pending[env.Rep.Seq]
		delete(c.pending, env.Rep.Seq)
		c.mu.Unlock()
		if ok {
			ch <- *env.Rep
		}
	}
}

// fail poisons the client and unblocks every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		if c.closed {
			err = ErrClosed
		}
		c.err = err
	}
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		ch <- Reply{Seq: seq, Err: c.err.Error()}
	}
}

// Do sends a request and returns a channel that will receive exactly one
// Reply. The request's Seq is assigned by the client and returned for
// correlation.
func (c *Client) Do(req Request) (<-chan Reply, uint64, error) {
	ch := make(chan Reply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, 0, err
	}
	c.seq++
	req.Seq = c.seq
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.encM.Lock()
	err := c.enc.Encode(envelope{Req: &req})
	c.encM.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("transport: send: %w", err)
	}
	return ch, req.Seq, nil
}

// Call sends a request and waits for its reply.
func (c *Client) Call(req Request) (Reply, error) {
	ch, _, err := c.Do(req)
	if err != nil {
		return Reply{}, err
	}
	rep := <-ch
	if rep.Err != "" {
		return rep, errors.New(rep.Err)
	}
	return rep, nil
}

// Close tears down the connection; outstanding calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// A Handler serves requests. reply must be called exactly once per
// request, from any goroutine — the server serializes writes.
type Handler interface {
	Handle(req Request, reply func(Reply))
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req Request, reply func(Reply))

// Handle calls f.
func (f HandlerFunc) Handle(req Request, reply func(Reply)) { f(req, reply) }

// ServeConn reads requests from conn and hands them to h until the
// connection closes. It returns the read error that ended the loop
// (io.EOF for a clean shutdown is reported as nil).
func ServeConn(conn net.Conn, h Handler) error {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encM sync.Mutex
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if env.Req == nil {
			continue
		}
		req := *env.Req
		h.Handle(req, func(rep Reply) {
			rep.Seq = req.Seq
			encM.Lock()
			defer encM.Unlock()
			// A dead connection surfaces on the read side; drop the error.
			_ = enc.Encode(envelope{Rep: &rep})
		})
	}
}

// Serve accepts connections from l and serves each in its own goroutine
// until the listener closes.
func Serve(l net.Listener, h Handler) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = ServeConn(conn, h)
		}()
	}
}

// Pipe returns a connected in-process client and the server side of the
// pipe, for tests and single-process demos.
func Pipe(h Handler) *Client {
	cs, ss := net.Pipe()
	go func() {
		defer ss.Close()
		_ = ServeConn(ss, h)
	}()
	return NewClient(cs)
}
