// Package transport provides the wire protocol for the real-time cluster
// mode: a minimal asynchronous RPC layer carrying storage requests from
// client processes to object storage servers, framed with encoding/gob
// over any net.Conn (TCP for multi-process runs, net.Pipe in tests).
//
// The protocol is deliberately Lustre-shaped: a request carries the JobID
// the server classifies on, an opcode, a payload size, and a stream
// identifier; the reply carries only the sequence number and outcome —
// payload movement is represented by the server's service time, not by
// shipping gigabytes through the test harness.
//
// Every call path is bounded: CallCtx/DoCtx honor context deadlines and
// cancellation (a server that accepts a request but never replies fails
// the call at its deadline instead of hanging the caller forever), the
// bare Call caps itself at DefaultCallTimeout, and a server whose write
// side has died poisons its connection so the peer's pending calls fail
// fast. For multi-process deployments, Redialer adds reconnect-on-dial
// with bounded backoff retry, and Fault/FaultedConn inject deterministic
// network misbehaviour (latency, jitter, loss, bandwidth caps) on either
// side of a connection.
package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// A Request is one RPC from a client process to a storage server.
type Request struct {
	Seq    uint64 // client-assigned; echoed in the reply
	JobID  string // %e.%H job identifier, the classification key
	Op     uint8  // tbf.Opcode value
	Bytes  int64  // payload size the server should account and "transfer"
	Stream int    // file/stream identifier for the device model

	// Payload carries an opaque control-plane message for coordination
	// services that share this transport (e.g. the live GIFT coordinator's
	// per-epoch walk). Storage RPCs leave it nil — data movement stays
	// represented by service time, never by shipping bytes.
	Payload []byte
}

// A Reply reports the outcome of one Request.
type Reply struct {
	Seq   uint64
	Bytes int64  // bytes transferred
	Err   string // empty on success

	// Reject, when non-zero, marks an admission-control outcome: the
	// server refused (RejectRefused) or shed (RejectShed) the request
	// instead of serving it. It is NOT a failure — the server is healthy
	// and answered definitively — so CallCtx surfaces it as a typed
	// *RejectedError that retry loops must treat as terminal: retrying
	// would defeat the overload protection the rejection implements.
	// Gob-compatible: old peers never set it (decoded as 0) and ignore
	// it when present.
	Reject uint8

	// Payload is the control-plane response counterpart of
	// Request.Payload (nil on storage RPCs).
	Payload []byte

	// failure carries the client-side error that produced this reply
	// (connection death, context expiry) so Call/CallCtx can return the
	// typed sentinel — errors.Is(err, ErrClosed) and
	// errors.Is(err, context.DeadlineExceeded) both work — instead of a
	// stringified copy. Unexported: gob ignores it, so the wire format is
	// unchanged and a genuine server-sent error arrives with failure nil.
	failure error
}

// envelope is the single wire message type, so one gob stream carries both
// directions' traffic uniformly.
type envelope struct {
	Req *Request
	Rep *Reply
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: connection closed")

// DefaultCallTimeout caps the bare Call (no context) so a server that
// accepts a request and never replies cannot hang its caller forever.
// Callers needing a different bound should use CallCtx. A variable, not a
// constant, so tests can shrink it; production code must treat it as
// fixed.
var DefaultCallTimeout = 2 * time.Minute

// A RemoteError is an error string sent by the server in Reply.Err —
// the failure happened on the far side, not in the transport. Its
// message round-trips verbatim.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Reply.Reject values.
const (
	// RejectRefused: the admission layer refused the request on arrival
	// (token bucket empty, queue bound hit); it never entered the queue.
	RejectRefused uint8 = 1
	// RejectShed: the request was admitted with a queueing deadline and
	// shed at dispatch time after the deadline expired unserved.
	RejectShed uint8 = 2
)

// A RejectedError reports that the server's admission layer declined
// the request — a definitive, healthy answer, not a transport or server
// failure. It must never be retried: the server is telling the caller
// it is overloaded, and a retry is exactly the load it is shedding.
type RejectedError struct {
	// Shed is true when the request was admitted then shed past its
	// queueing deadline, false when it was refused on arrival.
	Shed bool
}

func (e *RejectedError) Error() string {
	if e.Shed {
		return "transport: request shed past its admission deadline"
	}
	return "transport: request rejected by admission control"
}

// A Caller issues request/reply RPCs. *Client (one connection) and
// *Redialer (reconnect-on-dial) both implement it; the cluster layer's
// job runners and GIFT agents accept either.
type Caller interface {
	// CallCtx sends a request and waits for its reply, failing at ctx's
	// deadline or cancellation.
	CallCtx(ctx context.Context, req Request) (Reply, error)
	// Close releases the underlying connection(s).
	Close() error
}

// pendingCall is one in-flight request's delivery slot. Exactly one
// goroutine delivers: whoever removes the entry from the pending map
// (recvLoop on reply, fail on connection death, the DoCtx watchdog on
// context expiry) sends on ch and closes settled.
type pendingCall struct {
	ch      chan Reply
	settled chan struct{}
}

func (p *pendingCall) deliver(rep Reply) {
	p.ch <- rep // buffered 1, never blocks
	close(p.settled)
}

// A Client issues asynchronous requests over one connection. It is safe
// for concurrent use: many goroutines may Do at once, one internal loop
// dispatches replies.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	encM sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	seq     uint64
	err     error
	closed  bool
}

// NewClient wraps an established connection. The caller owns nothing
// afterwards; Close tears the connection down.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]*pendingCall),
	}
	go c.recvLoop()
	return c
}

// Dial connects to a storage server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Err reports the client's terminal error: nil while the connection is
// healthy, ErrClosed after Close, the transport error that killed the
// connection otherwise. A non-nil Err means every future call fails —
// the signal Redialer uses to reconnect.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// take removes and returns seq's pending slot, or nil if it was already
// delivered (or never existed). The caller that gets a non-nil slot owns
// its delivery.
func (c *Client) take(seq uint64) *pendingCall {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pending[seq]
	delete(c.pending, seq)
	return p
}

// recvLoop dispatches replies to their waiting channels until the
// connection dies, then fails all outstanding calls. A reply whose seq
// has no pending slot — already failed, already timed out, or a
// duplicate reply for an earlier seq — is dropped.
func (c *Client) recvLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			c.fail(err)
			return
		}
		if env.Rep == nil {
			continue // ignore stray traffic
		}
		if p := c.take(env.Rep.Seq); p != nil {
			p.deliver(*env.Rep)
		}
	}
}

// fail poisons the client and unblocks every waiter with the typed
// terminal error.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if c.closed {
			err = ErrClosed
		}
		c.err = err
	}
	err = c.err
	var stale []*pendingCall
	var seqs []uint64
	for seq, p := range c.pending {
		delete(c.pending, seq)
		stale = append(stale, p)
		seqs = append(seqs, seq)
	}
	c.mu.Unlock()
	for i, p := range stale {
		p.deliver(Reply{Seq: seqs[i], Err: err.Error(), failure: err})
	}
}

// Do sends a request and returns a channel that will receive exactly one
// Reply. The request's Seq is assigned by the client and returned for
// correlation. The reply channel is unbounded in time — use DoCtx to
// attach a deadline.
func (c *Client) Do(req Request) (<-chan Reply, uint64, error) {
	return c.DoCtx(context.Background(), req)
}

// DoCtx is Do with a context: if ctx expires before the reply arrives,
// the channel receives a Reply carrying ctx.Err() (typed — the eventual
// CallCtx error satisfies errors.Is(err, context.DeadlineExceeded) or
// context.Canceled) and any late genuine reply is dropped.
func (c *Client) DoCtx(ctx context.Context, req Request) (<-chan Reply, uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	p := &pendingCall{ch: make(chan Reply, 1), settled: make(chan struct{})}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, 0, err
	}
	c.seq++
	req.Seq = c.seq
	c.pending[req.Seq] = p
	c.mu.Unlock()

	c.encM.Lock()
	err := c.enc.Encode(envelope{Req: &req})
	c.encM.Unlock()
	if err != nil {
		// fail() may have delivered concurrently; only the goroutine that
		// takes the slot owns it, so a double delivery cannot happen.
		c.take(req.Seq)
		return nil, 0, fmt.Errorf("transport: send: %w", err)
	}
	if ctx.Done() != nil {
		go func(seq uint64) {
			select {
			case <-p.settled:
			case <-ctx.Done():
				if q := c.take(seq); q != nil {
					q.deliver(Reply{Seq: seq, Err: ctx.Err().Error(), failure: ctx.Err()})
				}
			}
		}(req.Seq)
	}
	return p.ch, req.Seq, nil
}

// replyError extracts the call error from a delivered reply: the typed
// client-side failure when one happened here, a *RejectedError when the
// server's admission layer declined the request, a *RemoteError when
// the server reported a failure, nil on success.
func replyError(rep Reply) error {
	if rep.failure != nil {
		return rep.failure
	}
	if rep.Reject != 0 {
		return &RejectedError{Shed: rep.Reject == RejectShed}
	}
	if rep.Err != "" {
		return &RemoteError{Msg: rep.Err}
	}
	return nil
}

// Call sends a request and waits for its reply, capped at
// DefaultCallTimeout — a stalled server fails the call instead of
// hanging it forever.
func (c *Client) Call(req Request) (Reply, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultCallTimeout)
	defer cancel()
	return c.CallCtx(ctx, req)
}

// CallCtx sends a request and waits for its reply or ctx's end,
// whichever comes first. Client-side failures keep their identity:
// errors.Is(err, ErrClosed) and errors.Is(err, context.DeadlineExceeded)
// both work; server-reported failures arrive as *RemoteError.
func (c *Client) CallCtx(ctx context.Context, req Request) (Reply, error) {
	ch, _, err := c.DoCtx(ctx, req)
	if err != nil {
		return Reply{}, err
	}
	rep := <-ch
	return rep, replyError(rep)
}

// Close tears down the connection; outstanding calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// A Handler serves requests. reply must be called exactly once per
// request, from any goroutine — the server serializes writes.
type Handler interface {
	Handle(req Request, reply func(Reply))
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req Request, reply func(Reply))

// Handle calls f.
func (f HandlerFunc) Handle(req Request, reply func(Reply)) { f(req, reply) }

// ServeConn reads requests from conn and hands them to h until the
// connection closes. It returns the read error that ended the loop
// (io.EOF for a clean shutdown is reported as nil).
//
// A failed reply write poisons the connection: the conn is closed so
// this read loop exits and the peer's pending calls fail fast, instead
// of a half-dead connection silently accepting and "serving" requests
// whose replies all vanish.
func ServeConn(conn net.Conn, h Handler) error {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encM sync.Mutex
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if env.Req == nil {
			continue
		}
		req := *env.Req
		h.Handle(req, func(rep Reply) {
			rep.Seq = req.Seq
			encM.Lock()
			defer encM.Unlock()
			if err := enc.Encode(envelope{Rep: &rep}); err != nil {
				// The write side is dead: poison the whole connection so
				// the decode loop above exits instead of serving on.
				conn.Close()
			}
		})
	}
}

// Serve accepts connections from l and serves each in its own goroutine
// until the listener closes.
func Serve(l net.Listener, h Handler) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = ServeConn(conn, h)
		}()
	}
}

// Pipe returns a connected in-process client and the server side of the
// pipe, for tests and single-process demos.
func Pipe(h Handler) *Client {
	cs, ss := net.Pipe()
	go func() {
		defer ss.Close()
		_ = ServeConn(ss, h)
	}()
	return NewClient(cs)
}

// PipeFault is Pipe with fault injection on the server side of the
// in-process connection: every message the server sends pays the
// profile's delays, exactly like a remote node wrapping its accepted
// conns, so each RPC round-trip pays one traversal. seed keys the
// profile's deterministic RNG.
func PipeFault(h Handler, f Fault, seed uint64) *Client {
	cs, ss := net.Pipe()
	go func() {
		fc := FaultedConn(ss, f, seed)
		defer fc.Close()
		_ = ServeConn(fc, h)
	}()
	return NewClient(cs)
}
