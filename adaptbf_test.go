package adaptbf_test

import (
	"context"
	"net"
	"testing"
	"time"

	"adaptbf"
	"adaptbf/internal/transport"
)

const mib = 1 << 20

func TestFacadeSimulation(t *testing.T) {
	res, err := adaptbf.Run(adaptbf.Scenario{
		Policy: adaptbf.PolicyAdapTBF,
		Jobs: []adaptbf.Job{
			adaptbf.ContinuousJob("small.n01", 1, 4, 64*mib),
			adaptbf.ContinuousJob("large.n02", 3, 4, 64*mib),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("scenario did not finish")
	}
	if got := res.Timeline.GrandTotalBytes(); got != 8*64*mib {
		t.Fatalf("served %d bytes, want %d", got, 8*64*mib)
	}
}

func TestFacadePolicies(t *testing.T) {
	jobs := []adaptbf.Job{adaptbf.ContinuousJob("j.n01", 1, 2, 16*mib)}
	for _, p := range []adaptbf.Policy{adaptbf.PolicyNoBW, adaptbf.PolicyStatic, adaptbf.PolicyAdapTBF} {
		res, err := adaptbf.Run(adaptbf.Scenario{Policy: p, Jobs: jobs})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.Done {
			t.Fatalf("%v: not done", p)
		}
	}
}

func TestFacadeAblationOptions(t *testing.T) {
	res, err := adaptbf.Run(adaptbf.Scenario{
		Policy: adaptbf.PolicyAdapTBF,
		Jobs: []adaptbf.Job{
			adaptbf.ContinuousJob("a.n01", 1, 2, 16*mib),
			adaptbf.BurstyJob("b.n02", 1, 1, 16*mib, 32, time.Second),
		},
		AllocOpts: []adaptbf.AllocatorOption{
			adaptbf.WithoutRecompensation(),
			adaptbf.WithRecordTTL(50),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("ablated scenario did not finish")
	}
}

func TestFacadeExperimentRunner(t *testing.T) {
	p := adaptbf.PaperParams()
	p.Scale = 64
	rep, err := adaptbf.RunAllocationExperiment(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 || len(rep.Timelines) != 3 {
		t.Fatalf("report incomplete: %d tables, %d timelines", len(rep.Tables), len(rep.Timelines))
	}
}

func TestFacadeLiveCluster(t *testing.T) {
	oss := adaptbf.NewOSS(adaptbf.OSSConfig{})
	defer oss.Close()
	ctrl := oss.NewController(
		adaptbf.NodeMapperFunc(func(string) int { return 1 }),
		500, 50*time.Millisecond,
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx)

	c := transport.Pipe(oss)
	defer c.Close()
	runner := &adaptbf.JobRunner{
		Job:     adaptbf.ContinuousJob("live.n01", 1, 1, 4*mib),
		Targets: []transport.Caller{c},
	}
	stats, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.RPCs != 4 {
		t.Fatalf("RPCs = %d, want 4", stats.RPCs)
	}
}

func TestFacadeMatrix(t *testing.T) {
	res, err := adaptbf.RunMatrix(adaptbf.ScenarioMatrix{
		Scenarios: adaptbf.DefaultScenarios(),
		Policies:  []adaptbf.Policy{adaptbf.PolicyNoBW, adaptbf.PolicyAdapTBF},
		Scales:    []int64{256},
		OSSes:     []int{2},
	}, adaptbf.MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(res.Cells))
	}
	for _, cr := range res.Cells {
		if !cr.Result.Done {
			t.Fatalf("cell %v did not finish", cr.Cell)
		}
	}
	rep := res.Report()
	if len(rep.Tables) < 2 || len(rep.Tables[0].Rows) != 6 {
		t.Fatalf("merged report malformed: %+v", rep.Tables)
	}
}

func TestFacadeMatrixCtx(t *testing.T) {
	// The context-aware entry point with functional options, on both
	// backends: sim cells stay deterministic, live cells run real
	// goroutine servers and are labeled as such.
	m := adaptbf.ScenarioMatrix{
		Scenarios: []adaptbf.MatrixScenario{{
			Name: "tiny",
			Jobs: func(p adaptbf.MatrixCellParams) []adaptbf.Job {
				return []adaptbf.Job{adaptbf.ContinuousJob("t.n01", 1, 2, 4*mib)}
			},
		}},
		Policies: []adaptbf.Policy{adaptbf.PolicyNoBW, adaptbf.PolicyAdapTBF},
		OSSes:    []int{2},
		Duration: 30 * time.Second,
	}
	simRes, err := adaptbf.RunMatrixCtx(context.Background(), m,
		adaptbf.WithMatrixWorkers(2), adaptbf.WithMatrixDigests(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range simRes.Cells {
		if cr.Backend != "sim" || len(cr.JobDigests) != 1 {
			t.Fatalf("sim cell malformed: backend=%q jobDigests=%d", cr.Backend, len(cr.JobDigests))
		}
	}
	liveRes, err := adaptbf.RunMatrixCtx(context.Background(), m,
		adaptbf.WithMatrixBackend(&adaptbf.ClusterBackend{Speedup: 8}),
		adaptbf.WithMatrixCellTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range liveRes.Cells {
		if cr.Backend != "live" {
			t.Fatalf("live cell labeled %q", cr.Backend)
		}
		if !cr.Result.Done || cr.Result.ServedRPCs != 8 {
			t.Fatalf("live cell %v: done=%v rpcs=%d", cr.Cell, cr.Result.Done, cr.Result.ServedRPCs)
		}
	}
	// Live cells in the exported document carry their backend.
	doc := adaptbf.NewMatrixDocument(liveRes, adaptbf.MatrixDocumentOptions{})
	for _, c := range doc.Cells {
		if c.Backend != "live" {
			t.Fatalf("document cell backend = %q", c.Backend)
		}
	}
}

func TestFacadeHelpers(t *testing.T) {
	p := adaptbf.DelayedPattern(adaptbf.Pattern{FileBytes: 1}, 5*time.Second)
	if p.StartDelay != 5*time.Second {
		t.Fatalf("DelayedPattern: %+v", p)
	}
	if d := adaptbf.DefaultDevice(); d.BytesPerSec <= 0 {
		t.Fatalf("DefaultDevice: %+v", d)
	}
}

func TestFacadePipeAndServe(t *testing.T) {
	oss := adaptbf.NewOSS(adaptbf.OSSConfig{})
	defer oss.Close()
	// In-process pipe path.
	pc := adaptbf.PipeOSS(oss)
	defer pc.Close()
	runner := &adaptbf.JobRunner{
		Job:     adaptbf.ContinuousJob("pipe.n01", 1, 1, 2*mib),
		Targets: []adaptbf.Caller{pc},
	}
	if stats, err := runner.Run(context.Background()); err != nil || stats.RPCs != 2 {
		t.Fatalf("pipe run: %v %+v", err, stats)
	}
	// TCP path.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go adaptbf.ServeOSS(l, oss)
	tc, err := adaptbf.DialOSS("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	runner2 := &adaptbf.JobRunner{
		Job:     adaptbf.ContinuousJob("tcp.n01", 1, 1, 2*mib),
		Targets: []adaptbf.Caller{tc},
	}
	if stats, err := runner2.Run(context.Background()); err != nil || stats.RPCs != 2 {
		t.Fatalf("tcp run: %v %+v", err, stats)
	}
}
