// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV). One benchmark per figure/table, plus the §IV-G
// overhead micro-benchmarks and the ablation benches DESIGN.md §5 calls
// out.
//
// Figure benches run the full three-policy simulation at 1/16 of the
// paper's data volumes per iteration (the dynamics are preserved; see
// internal/experiments) and report the headline numbers as custom
// metrics, so `go test -bench=.` prints the same comparisons the paper
// plots. Run `go run ./cmd/adaptbf-bench` for the paper-scale tables.
package adaptbf_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"adaptbf"
	"adaptbf/internal/core"
	"adaptbf/internal/experiments"
	"adaptbf/internal/harness"
	"adaptbf/internal/metrics"
	"adaptbf/internal/sim"
	"adaptbf/internal/tbf"
	"adaptbf/internal/workload"
)

// benchParams shrinks the paper's volumes 16× per iteration.
func benchParams() adaptbf.ExperimentParams {
	p := adaptbf.PaperParams()
	p.Scale = 16
	return p
}

func reportPolicies(b *testing.B, rep *adaptbf.ExperimentReport) {
	b.Helper()
	for pol, tl := range rep.Timelines {
		sum := tl.Summarize()
		name := strings.ReplaceAll(pol.String(), " ", "")
		b.ReportMetric(sum.OverallMiBps, name+"_MiB/s")
	}
}

// BenchmarkFig3TokenAllocation regenerates the §IV-D timelines (Figure 3):
// four continuous jobs, priorities 10/10/30/50%, under all three policies.
func BenchmarkFig3TokenAllocation(b *testing.B) {
	var rep *adaptbf.ExperimentReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = adaptbf.RunAllocationExperiment(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPolicies(b, rep)
}

// BenchmarkFig4AllocationSummary regenerates Figure 4: the per-job /
// overall bandwidth bars and AdapTBF's gain/loss vs the baselines.
func BenchmarkFig4AllocationSummary(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rep, err := adaptbf.RunAllocationExperiment(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		gl := metrics.GainLoss(
			rep.Timelines[sim.AdapTBF].Summarize(),
			rep.Timelines[sim.NoBW].Summarize(),
		)
		gain = gl["job4.n04"]
	}
	b.ReportMetric(gain, "job4_gain_%")
}

// BenchmarkFig5Redistribution regenerates the §IV-E timelines (Figure 5):
// bursty high-priority jobs against a continuous low-priority hog.
func BenchmarkFig5Redistribution(b *testing.B) {
	var rep *adaptbf.ExperimentReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = adaptbf.RunRedistributionExperiment(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPolicies(b, rep)
}

// BenchmarkFig6RedistributionSummary regenerates Figure 6: burst
// protection gains for the high-priority jobs.
func BenchmarkFig6RedistributionSummary(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rep, err := adaptbf.RunRedistributionExperiment(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		gl := metrics.GainLoss(
			rep.Timelines[sim.AdapTBF].Summarize(),
			rep.Timelines[sim.NoBW].Summarize(),
		)
		gain = gl["job1.n01"]
	}
	b.ReportMetric(gain, "job1_gain_%")
}

// BenchmarkFig7Recompensation regenerates the §IV-F record/demand
// timelines (Figure 7), reporting job3's peak lending record.
func BenchmarkFig7Recompensation(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		rep, err := adaptbf.RunRecompensationExperiment(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, pt := range rep.Series.Get("record:job3.n03") {
			if pt.V > peak {
				peak = pt.V
			}
		}
	}
	b.ReportMetric(peak, "job3_peak_lent_tokens")
}

// BenchmarkFig8RecompensationSummary regenerates Figure 8: aggregate
// bandwidth comparison for the re-compensation workload.
func BenchmarkFig8RecompensationSummary(b *testing.B) {
	var rep *adaptbf.ExperimentReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = adaptbf.RunRecompensationExperiment(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPolicies(b, rep)
}

// BenchmarkFig9AllocationFrequency regenerates Figure 9: aggregate
// throughput across the Δt sweep, reporting the two endpoints.
func BenchmarkFig9AllocationFrequency(b *testing.B) {
	freqs := []time.Duration{100 * time.Millisecond, 2 * time.Second}
	var fast, slow float64
	for i := 0; i < b.N; i++ {
		p := benchParams()
		for j, f := range freqs {
			pp := p
			pp.Period = f
			res, err := sim.Run(sim.Config{
				Policy:       sim.AdapTBF,
				Jobs:         experiments.JobsRecompensation(pp),
				MaxTokenRate: pp.MaxTokenRate,
				Period:       f,
				Duration:     pp.Duration,
			})
			if err != nil {
				b.Fatal(err)
			}
			v := res.Timeline.Summarize().OverallMiBps
			if j == 0 {
				fast = v
			} else {
				slow = v
			}
		}
	}
	b.ReportMetric(fast, "dt100ms_MiB/s")
	b.ReportMetric(slow, "dt2s_MiB/s")
}

// --- §IV-G overhead: the paper reports <30 µs of allocation time per job
// and O(n) scaling in active jobs. ---

func benchAllocator(b *testing.B, jobs int) {
	a := core.New(core.Config{MaxRate: 500 * float64(1+jobs/4), Period: 100 * time.Millisecond})
	acts := make([]core.Activity, jobs)
	for i := range acts {
		acts[i] = core.Activity{
			Job:    core.JobID(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10))),
			Nodes:  1 + i%32,
			Demand: int64(1 + (i*37)%900),
		}
	}
	a.Allocate(acts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range acts {
			acts[j].Demand = int64(1 + (i+j*53)%900)
		}
		a.Allocate(acts)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(jobs), "ns/job")
}

func BenchmarkAllocatorPerJob1(b *testing.B)    { benchAllocator(b, 1) }
func BenchmarkAllocatorPerJob10(b *testing.B)   { benchAllocator(b, 10) }
func BenchmarkAllocatorPerJob100(b *testing.B)  { benchAllocator(b, 100) }
func BenchmarkAllocatorPerJob1000(b *testing.B) { benchAllocator(b, 1000) }

// BenchmarkControllerCycle measures the whole collect→allocate→apply→clear
// cycle against a live TBF scheduler with 64 active jobs (the paper's
// "overall framework overhead", ~25 ms there including lctl exec costs;
// in-process it is microseconds, which is the gap the paper attributes to
// external interactions).
func BenchmarkControllerCycle(b *testing.B) {
	res, err := sim.Run(sim.Config{
		Policy: sim.AdapTBF,
		Jobs: []workload.Job{
			workload.Continuous("a.n01", 1, 4, 64<<20),
			workload.Continuous("b.n02", 3, 4, 64<<20),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(res.TickTimes) == 0 {
		b.Fatal("no ticks")
	}
	b.ResetTimer()
	var total time.Duration
	n := 0
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(sim.Config{
			Policy: sim.AdapTBF,
			Jobs: []workload.Job{
				workload.Continuous("a.n01", 1, 4, 64<<20),
				workload.Continuous("b.n02", 3, 4, 64<<20),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range r.TickTimes {
			total += d
			n++
		}
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(n), "ns/cycle")
}

// --- TBF scheduler micro-benchmarks (the substrate's hot path). ---

func BenchmarkTBFEnqueueDequeue(b *testing.B) {
	s := tbf.NewScheduler(tbf.Config{})
	for j := 0; j < 16; j++ {
		id := "job" + string(rune('a'+j)) + ".n"
		s.StartRule(tbf.Rule{Name: id, Match: tbf.Match{JobIDs: []string{id}}, Rate: 1e9, Order: j}, 0)
	}
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 1000
		id := "job" + string(rune('a'+i%16)) + ".n"
		s.Enqueue(&tbf.Request{JobID: id, Bytes: 1 << 20}, now)
		if r, _, ok := s.Dequeue(now); !ok || r == nil {
			b.Fatal("dequeue failed")
		}
	}
}

func BenchmarkTBFFallbackPath(b *testing.B) {
	s := tbf.NewScheduler(tbf.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Enqueue(&tbf.Request{JobID: "unmatched.n", Bytes: 1 << 20}, int64(i))
		if _, _, ok := s.Dequeue(int64(i)); !ok {
			b.Fatal("fallback dequeue failed")
		}
	}
}

// --- Ablations (DESIGN.md §5): what each algorithm step buys. ---

func benchAblation(b *testing.B, opts ...core.Option) {
	var overall, highPrioGain float64
	for i := 0; i < b.N; i++ {
		p := benchParams()
		jobs := experiments.JobsRedistribution(p)
		res, err := sim.Run(sim.Config{
			Policy:    sim.AdapTBF,
			Jobs:      jobs,
			Duration:  p.Duration,
			AllocOpts: opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		base, err := sim.Run(sim.Config{Policy: sim.NoBW, Jobs: jobs, Duration: p.Duration})
		if err != nil {
			b.Fatal(err)
		}
		sum, bsum := res.Timeline.Summarize(), base.Timeline.Summarize()
		overall = sum.OverallMiBps
		highPrioGain = metrics.GainLoss(sum, bsum)["job1.n01"]
	}
	b.ReportMetric(overall, "overall_MiB/s")
	b.ReportMetric(highPrioGain, "job1_gain_%")
}

func BenchmarkAblationFull(b *testing.B) { benchAblation(b) }

func BenchmarkAblationNoRedistribution(b *testing.B) {
	benchAblation(b, core.WithoutRedistribution())
}

func BenchmarkAblationNoRecompensation(b *testing.B) {
	benchAblation(b, core.WithoutRecompensation())
}

func BenchmarkAblationNoRemainders(b *testing.B) {
	benchAblation(b, core.WithoutRemainders())
}

// BenchmarkAblationBucketDepth sweeps the TBF bucket depth (Lustre's
// default is 3) on the redistribution workload.
func BenchmarkAblationBucketDepth(b *testing.B) {
	depths := []float64{1, 3, 16, 64}
	results := make([]float64, len(depths))
	for i := 0; i < b.N; i++ {
		p := benchParams()
		for d, depth := range depths {
			res, err := sim.Run(sim.Config{
				Policy:      sim.AdapTBF,
				Jobs:        experiments.JobsRedistribution(p),
				Duration:    p.Duration,
				BucketDepth: depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			results[d] = res.Timeline.Summarize().OverallMiBps
		}
	}
	b.ReportMetric(results[0], "depth1_MiB/s")
	b.ReportMetric(results[1], "depth3_MiB/s")
	b.ReportMetric(results[3], "depth64_MiB/s")
}

// --- Scenario-matrix engine: the same 24-cell grid the acceptance
// criteria name (3 scenarios × 4 policies × 2 OSS counts), sequential vs
// worker-pool. The parallel/sequential wall-clock ratio is the speedup
// the engine buys the figure suite. ---

func benchMatrix() harness.Matrix {
	return harness.Matrix{
		Scenarios: harness.DefaultScenarios(),
		Policies:  []sim.Policy{sim.NoBW, sim.StaticBW, sim.AdapTBF, sim.SFQ},
		Scales:    []int64{64},
		OSSes:     []int{1, 2},
	}
}

func benchMatrixRun(b *testing.B, workers int) {
	var cells int
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(context.Background(), benchMatrix(), harness.WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		cells = len(res.Cells)
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkMatrixSequential(b *testing.B) { benchMatrixRun(b, 1) }

func BenchmarkMatrixParallel(b *testing.B) { benchMatrixRun(b, runtime.NumCPU()) }

// BenchmarkMatrixMultiOSS scales the OSS axis alone: one scenario, one
// policy, stacks of 1/2/4/8 striped OSSes per cell.
func BenchmarkMatrixMultiOSS(b *testing.B) {
	m := harness.Matrix{
		Scenarios: []harness.Scenario{harness.StripedSequentialScenario()},
		Policies:  []sim.Policy{sim.AdapTBF},
		Scales:    []int64{64},
		OSSes:     []int{1, 2, 4, 8},
	}
	var bw1, bw8 float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(context.Background(), m)
		if err != nil {
			b.Fatal(err)
		}
		bw1 = res.Cells[0].Result.Timeline.Summarize().OverallMiBps
		bw8 = res.Cells[3].Result.Timeline.Summarize().OverallMiBps
	}
	b.ReportMetric(bw1, "oss1_MiB/s")
	b.ReportMetric(bw8, "oss8_MiB/s")
}

// BenchmarkExtGIFTComparison regenerates the GIFT extension table: the
// §IV-D workload under the centralized coupon-based baseline, reporting
// the priority signal each mechanism delivers (job4/job1 bandwidth ratio;
// GIFT ≈ 1, AdapTBF ≈ 2).
func BenchmarkExtGIFTComparison(b *testing.B) {
	var giftRatio, adapRatio float64
	for i := 0; i < b.N; i++ {
		rep, err := adaptbf.RunGIFTComparison(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		g := rep.Timelines[sim.GIFT].Summarize()
		a := rep.Timelines[sim.AdapTBF].Summarize()
		giftRatio = g.PerJob["job4.n04"].AvgMiBps / g.PerJob["job1.n01"].AvgMiBps
		adapRatio = a.PerJob["job4.n04"].AvgMiBps / a.PerJob["job1.n01"].AvgMiBps
	}
	b.ReportMetric(giftRatio, "gift_j4/j1")
	b.ReportMetric(adapRatio, "adaptbf_j4/j1")
}

// BenchmarkExtSFQComparison regenerates the SFQ(D) extension table on the
// §IV-E workload.
func BenchmarkExtSFQComparison(b *testing.B) {
	var sfqOverall, adapOverall float64
	for i := 0; i < b.N; i++ {
		rep, err := adaptbf.RunSFQComparison(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		sfqOverall = rep.Timelines[sim.SFQ].Summarize().OverallMiBps
		adapOverall = rep.Timelines[sim.AdapTBF].Summarize().OverallMiBps
	}
	b.ReportMetric(sfqOverall, "sfq_MiB/s")
	b.ReportMetric(adapOverall, "adaptbf_MiB/s")
}
