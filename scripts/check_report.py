#!/usr/bin/env python3
"""Consolidated CI assertions over adaptbf's JSON artifacts.

Every CI job that asserts on a schema-versioned report document (or the
Chrome trace export) runs one subcommand of this script instead of an
inline workflow heredoc, so the expected schema version lives in exactly
one place and the checks are runnable locally:

    scripts/check_report.py remote-smoke remote_report.json
    scripts/check_report.py saturation-smoke saturation.json
    scripts/check_report.py workload-smoke workload_report.json replay_report.json
    scripts/check_report.py trace-smoke matrix_trace.json obs_report.json
    scripts/check_report.py gate-contention-smoke gate_contention.json

Checks assert existence and shape (schema version, section presence,
counter consistency), never performance magnitudes — CI runners are too
noisy for those; the tracked BENCH_matrix.json gate owns regressions.
"""

import argparse
import collections
import json
import sys

# The schema version every current artifact must carry. Bump alongside
# report.SchemaVersion (internal/report/report.go).
SCHEMA_VERSION = 8


def load(path):
    with open(path) as f:
        return json.load(f)


def assert_schema(doc, path):
    got = doc.get("schema_version")
    assert got == SCHEMA_VERSION, f"{path}: schema_version {got}, want {SCHEMA_VERSION}"


def check_remote_smoke(args):
    doc = load(args.report)
    assert_schema(doc, args.report)
    cells = doc["cells"]
    assert len(cells) == args.cells, f"{len(cells)} cells, want {args.cells}"
    for c in cells:
        assert c["backend"] == "remote", c
        assert not c.get("error"), c
    print(f"remote report OK: {len(cells)} cells")


def check_saturation_smoke(args):
    doc = load(args.report)
    assert_schema(doc, args.report)
    assert doc["kind"] == "saturation", doc["kind"]
    sat = doc["saturation"]
    pols = sat["policies"]
    assert len(pols) == args.policies, [p["admission"] for p in pols]
    for p in pols:
        knee = p["capacity_scale"]
        assert 0 <= knee <= sat["max_scale"], p
        assert p["probes"], p["admission"]
        if knee > 0:
            at = p["at_knee"]
            assert at["scale"] == knee and not at["breach"], at
            assert 0 < at["goodput_pct_mean"] <= 100, at
    print("saturation report OK:",
          {p["admission"]: p["capacity_scale"] for p in pols})


def check_workload_smoke(args):
    rec = load(args.recorded)
    rep = load(args.replayed)
    for doc, path in ((rec, args.recorded), (rep, args.replayed)):
        assert_schema(doc, path)
        assert len(doc["cells"]) == 1 and not doc["cells"][0].get("error")
    a, b = rec["cells"][0], rep["cells"][0]
    wa, wb = a["workload"], b["workload"]
    assert wa["mode"] == wb["mode"] == "stream", (wa, wb)
    assert wa["source"] == "spec" and wb["source"] == "trace", (wa, wb)
    assert wa["stream_jobs"] == wb["stream_jobs"] == args.stream_jobs, (wa, wb)
    assert wa["spec_sha256"] == wb["spec_sha256"], (wa, wb)
    assert wa["trace_path"], wa
    for k in ("served_rpcs", "overall_mibps", "makespan_s"):
        assert a[k] == b[k], (k, a[k], b[k])
    print(f"workload smoke OK: {wa['stream_jobs']} jobs streamed,"
          f" replay reproduced {a['served_rpcs']} RPCs")


def check_trace_smoke(args):
    doc = load(args.trace)
    evs = doc["traceEvents"]
    assert evs, "empty trace"
    # Every event lives in a process that metadata names.
    named = {e["pid"] for e in evs
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert {e["pid"] for e in evs} <= named, "unnamed process"
    assert len(named) == args.processes, sorted(named)
    # Async span lifecycles balance: b/e pair up per (pid, cat, id),
    # opens before closes, nothing left dangling.
    open_spans = collections.Counter()
    for e in evs:
        if e["ph"] == "b":
            open_spans[(e["pid"], e["cat"], e["id"])] += 1
        elif e["ph"] == "e":
            key = (e["pid"], e["cat"], e["id"])
            assert open_spans[key] > 0, f"e before b: {e}"
            open_spans[key] -= 1
    assert not +open_spans, f"unclosed spans: {+open_spans}"
    # Complete spans never overlap within one thread: the device phase
    # is sequential per OSS by construction.
    lanes = collections.defaultdict(list)
    for e in evs:
        if e["ph"] == "X":
            lanes[(e["pid"], e["tid"])].append((e["ts"], e["dur"]))
    ns = lambda us: round(us * 1000)  # timestamps are µs floats of ns values
    for lane, spans in lanes.items():
        spans.sort()
        for (t0, d0), (t1, _) in zip(spans, spans[1:]):
            assert ns(t0) + ns(d0) <= ns(t1), f"overlapping X spans in {lane}"
    names = {e["name"] for e in evs}
    for want in ("rpc", "device", "adaptbf.tick", "gift.walk"):
        assert want in names, f"missing {want} spans"
    rep = load(args.report)
    assert_schema(rep, args.report)
    for c in rep["cells"]:
        o = c["obs"]
        assert o["counters"]["rpc_served_total"] == c["served_rpcs"], c
    print(f"trace OK: {len(evs)} events across {len(named)} cells,"
          f" {len(lanes)} X lanes")


def check_gate_contention_smoke(args):
    doc = load(args.report)
    assert_schema(doc, args.report)
    assert doc["kind"] == "gate-contention", doc["kind"]
    gc = doc["gate_contention"]
    gates = {g["gate"]: g for g in gc["gates"]}
    want = {"tbf", "sharded-tbf", "edt", "sfq"}
    assert set(gates) == want, sorted(gates)
    assert gates["tbf"]["shards"] == 0 and gates["sharded-tbf"]["shards"] > 1, \
        {n: g["shards"] for n, g in gates.items()}
    concs = gc["concurrencies"]
    assert len(concs) >= args.min_concurrencies, concs
    for g in gc["gates"]:
        got = [p["concurrency"] for p in g["points"]]
        assert got == concs, (g["gate"], got, concs)
        for p in g["points"]:
            assert p["n"] >= 1, (g["gate"], p)
            assert p["mibps_mean"] > 0, (g["gate"], p)
            assert p["p99_us_mean"] > 0, (g["gate"], p)
            # Shape, not magnitude: every gate must have actually
            # observed lock acquisitions at the requestGate seam — a
            # zero count means the histogram got unhooked, the exact
            # regression this smoke exists to catch.
            assert p["lock_wait_count"] > 0, (g["gate"], p)
    print("gate-contention report OK:",
          {n: [p["lock_wait_count"] for p in g["points"]]
           for n, g in gates.items()})


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="check", required=True)

    p = sub.add_parser("remote-smoke",
                       help="remote-backend grid report: all cells backend:remote, none failed")
    p.add_argument("report")
    p.add_argument("--cells", type=int, default=2, help="expected cell count")
    p.set_defaults(fn=check_remote_smoke)

    p = sub.add_parser("saturation-smoke",
                       help="saturation study: a knee per admission policy, goodput beside it")
    p.add_argument("report")
    p.add_argument("--policies", type=int, default=2, help="expected admission-policy count")
    p.set_defaults(fn=check_saturation_smoke)

    p = sub.add_parser("workload-smoke",
                       help="streaming workload + trace replay: replay reproduces the recorded cell")
    p.add_argument("recorded")
    p.add_argument("replayed")
    p.add_argument("--stream-jobs", type=int, default=1_000_000,
                   help="expected streamed job count")
    p.set_defaults(fn=check_workload_smoke)

    p = sub.add_parser("trace-smoke",
                       help="Chrome trace structural invariants + obs counters vs cell summaries")
    p.add_argument("trace")
    p.add_argument("report")
    p.add_argument("--processes", type=int, default=2, help="expected trace process count")
    p.set_defaults(fn=check_trace_smoke)

    p = sub.add_parser("gate-contention-smoke",
                       help="gate-contention study: all four gates, nonzero lock-wait counts")
    p.add_argument("report")
    p.add_argument("--min-concurrencies", type=int, default=2,
                   help="minimum swept concurrency points")
    p.set_defaults(fn=check_gate_contention_smoke)

    args = ap.parse_args()
    try:
        args.fn(args)
    except (AssertionError, KeyError, TypeError) as e:
        print(f"check_report {args.check} FAILED: {e!r}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
