module adaptbf

go 1.24
